package program

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Assemble parses a textual program into a validated Program. The
// syntax is one instruction or label per line:
//
//	; comment (also # and //)
//	start:
//	    li   r1, 100
//	loop:
//	    ld   r2, 8(r1)
//	    addi r1, r1, 8
//	    bne  r2, r0, loop
//	    fli  f1, 2.5
//	    halt
//
// Registers are r0..r31, f0..f31 and the aliases sp, fp, ra. Memory
// operands are written off(base). Branch and jump targets are labels.
func Assemble(name, src string) (*Program, error) {
	b := NewBuilder(name)
	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// A line may carry "label: inst".
		for {
			colon := strings.Index(line, ":")
			if colon < 0 {
				break
			}
			label := strings.TrimSpace(line[:colon])
			if !isIdent(label) {
				return nil, fmt.Errorf("%s:%d: bad label %q", name, lineNo+1, label)
			}
			b.Label(label)
			line = strings.TrimSpace(line[colon+1:])
		}
		if line == "" {
			continue
		}
		if err := asmInst(b, line); err != nil {
			return nil, fmt.Errorf("%s:%d: %v", name, lineNo+1, err)
		}
	}
	return b.Build()
}

// MustAssemble is Assemble but panics on error.
func MustAssemble(name, src string) *Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

func stripComment(line string) string {
	for _, marker := range []string{";", "#", "//"} {
		if i := strings.Index(line, marker); i >= 0 {
			line = line[:i]
		}
	}
	return line
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		case c == '.':
		default:
			return false
		}
	}
	return true
}

var opByName = func() map[string]Opcode {
	m := make(map[string]Opcode, NumOpcodes)
	for op := Opcode(0); int(op) < NumOpcodes; op++ {
		m[op.String()] = op
	}
	return m
}()

func parseReg(tok string) (isa.Reg, error) {
	switch tok {
	case "sp":
		return isa.SP, nil
	case "fp":
		return isa.FP, nil
	case "ra":
		return isa.RA, nil
	}
	if len(tok) >= 2 && (tok[0] == 'r' || tok[0] == 'f') {
		n, err := strconv.Atoi(tok[1:])
		if err == nil && n >= 0 && n < 32 {
			if tok[0] == 'r' {
				return isa.Reg(n), nil
			}
			return isa.F0 + isa.Reg(n), nil
		}
	}
	return isa.RegNone, fmt.Errorf("bad register %q", tok)
}

func parseImm(tok string) (int64, error) {
	v, err := strconv.ParseInt(tok, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", tok)
	}
	return v, nil
}

// parseMem parses "off(base)".
func parseMem(tok string) (isa.Reg, int64, error) {
	open := strings.Index(tok, "(")
	if open < 0 || !strings.HasSuffix(tok, ")") {
		return isa.RegNone, 0, fmt.Errorf("bad memory operand %q", tok)
	}
	offStr := strings.TrimSpace(tok[:open])
	off := int64(0)
	if offStr != "" {
		v, err := parseImm(offStr)
		if err != nil {
			return isa.RegNone, 0, err
		}
		off = v
	}
	base, err := parseReg(strings.TrimSpace(tok[open+1 : len(tok)-1]))
	if err != nil {
		return isa.RegNone, 0, err
	}
	return base, off, nil
}

func asmInst(b *Builder, line string) error {
	fields := strings.SplitN(line, " ", 2)
	mnemonic := strings.ToLower(fields[0])
	op, ok := opByName[mnemonic]
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	var args []string
	if len(fields) > 1 {
		for _, a := range strings.Split(fields[1], ",") {
			args = append(args, strings.TrimSpace(a))
		}
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s needs %d operands, got %d", mnemonic, n, len(args))
		}
		return nil
	}

	switch op {
	case Nop:
		if err := need(0); err != nil {
			return err
		}
		b.Nop()
	case Halt:
		if err := need(0); err != nil {
			return err
		}
		b.Halt()
	case Ret:
		if err := need(0); err != nil {
			return err
		}
		b.Ret()

	case Add, Sub, And, Or, Xor, Shl, Shr, Sar, Slt, Mul, Div, Rem,
		Fadd, Fsub, Fmul, Fdiv, Fmax, Fmin, Flt:
		if err := need(3); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs, err := parseReg(args[1])
		if err != nil {
			return err
		}
		rt, err := parseReg(args[2])
		if err != nil {
			return err
		}
		b.emit(Inst{Op: op, Rd: rd, Rs: rs, Rt: rt})

	case Addi, Andi, Ori, Xori, Shli, Shri, Slti:
		if err := need(3); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs, err := parseReg(args[1])
		if err != nil {
			return err
		}
		imm, err := parseImm(args[2])
		if err != nil {
			return err
		}
		b.emit(Inst{Op: op, Rd: rd, Rs: rs, Imm: imm})

	case Li:
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		imm, err := parseImm(args[1])
		if err != nil {
			return err
		}
		b.Li(rd, imm)

	case Fli:
		if err := need(2); err != nil {
			return err
		}
		fd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		v, err := strconv.ParseFloat(args[1], 64)
		if err != nil {
			return fmt.Errorf("bad float immediate %q", args[1])
		}
		b.Fli(fd, v)

	case Fsqrt, Fneg, Fabs, Cvtif, Cvtfi:
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs, err := parseReg(args[1])
		if err != nil {
			return err
		}
		b.emit(Inst{Op: op, Rd: rd, Rs: rs, Rt: none})

	case Ld, Fld:
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		base, off, err := parseMem(args[1])
		if err != nil {
			return err
		}
		b.emit(Inst{Op: op, Rd: rd, Rs: base, Imm: off})

	case St, Fst:
		if err := need(2); err != nil {
			return err
		}
		rt, err := parseReg(args[0])
		if err != nil {
			return err
		}
		base, off, err := parseMem(args[1])
		if err != nil {
			return err
		}
		b.emit(Inst{Op: op, Rd: none, Rs: base, Rt: rt, Imm: off})

	case Beq, Bne, Blt, Bge:
		if err := need(3); err != nil {
			return err
		}
		rs, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rt, err := parseReg(args[1])
		if err != nil {
			return err
		}
		if !isIdent(args[2]) {
			return fmt.Errorf("bad branch target %q", args[2])
		}
		b.emitLabelled(Inst{Op: op, Rd: none, Rs: rs, Rt: rt}, args[2])

	case J, Call:
		if err := need(1); err != nil {
			return err
		}
		if !isIdent(args[0]) {
			return fmt.Errorf("bad jump target %q", args[0])
		}
		rd := none
		if op == Call {
			rd = isa.RA
		}
		b.emitLabelled(Inst{Op: op, Rd: rd, Rs: none, Rt: none}, args[0])

	case Jr:
		if err := need(1); err != nil {
			return err
		}
		rs, err := parseReg(args[0])
		if err != nil {
			return err
		}
		b.Jr(rs)

	default:
		return fmt.Errorf("unhandled mnemonic %q", mnemonic)
	}
	return nil
}
