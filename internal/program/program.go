package program

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// CodeBase is the virtual address of the first instruction. Instruction
// i lives at CodeBase + 4*i.
const CodeBase uint64 = 0x1000

// InstBytes is the architectural size of one instruction.
const InstBytes uint64 = 4

// Program is a validated, label-resolved instruction sequence plus the
// metadata the executor needs.
type Program struct {
	// Name identifies the program in reports.
	Name string
	// Code is the instruction sequence; control-flow targets in Imm are
	// instruction indices into Code.
	Code []Inst
	// Labels maps label names to instruction indices (for debugging and
	// the disassembler; execution never consults it).
	Labels map[string]int
}

// PC returns the virtual address of instruction index i.
func PC(i int) uint64 { return CodeBase + uint64(i)*InstBytes }

// Index returns the instruction index of virtual address pc, or -1 if
// pc is not a code address.
func Index(pc uint64) int {
	if pc < CodeBase || (pc-CodeBase)%InstBytes != 0 {
		return -1
	}
	return int((pc - CodeBase) / InstBytes)
}

// Validate checks structural invariants: every control-flow target is a
// valid instruction index, register operands are in range, and the
// program ends in a path to Halt (statically: contains at least one
// Halt).
func (p *Program) Validate() error {
	if len(p.Code) == 0 {
		return fmt.Errorf("program %q has no instructions", p.Name)
	}
	hasHalt := false
	for i, in := range p.Code {
		if int(in.Op) >= NumOpcodes {
			return fmt.Errorf("%q inst %d: invalid opcode %d", p.Name, i, in.Op)
		}
		if in.Op == Halt {
			hasHalt = true
		}
		if in.Op.IsBranch() || in.Op == J || in.Op == Call {
			if in.Imm < 0 || in.Imm >= int64(len(p.Code)) {
				return fmt.Errorf("%q inst %d (%s): target %d out of range [0,%d)",
					p.Name, i, in, in.Imm, len(p.Code))
			}
		}
		for _, r := range [3]isa.Reg{in.Rd, in.Rs, in.Rt} {
			if r != isa.RegNone && !r.Valid() {
				return fmt.Errorf("%q inst %d (%s): bad register %d", p.Name, i, in, r)
			}
		}
	}
	if !hasHalt {
		return fmt.Errorf("program %q has no halt instruction", p.Name)
	}
	return nil
}

// Disassemble renders the whole program with labels and addresses, one
// instruction per line.
func (p *Program) Disassemble() string {
	byIndex := make(map[int][]string)
	for name, idx := range p.Labels {
		byIndex[idx] = append(byIndex[idx], name)
	}
	var b strings.Builder
	for i, in := range p.Code {
		for _, l := range byIndex[i] {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		fmt.Fprintf(&b, "  %#06x  %s\n", PC(i), in)
	}
	return b.String()
}

// StaticStats summarises the static composition of a program.
type StaticStats struct {
	Insts    int
	ByClass  [isa.NumClasses]int
	Branches int
	Loads    int
	Stores   int
}

// Stats computes static composition counts.
func (p *Program) Stats() StaticStats {
	var s StaticStats
	s.Insts = len(p.Code)
	for _, in := range p.Code {
		c := in.Op.Class()
		s.ByClass[c]++
		switch c {
		case isa.ClassBranch:
			s.Branches++
		case isa.ClassLoad:
			s.Loads++
		case isa.ClassStore:
			s.Stores++
		}
	}
	return s
}
