// Package program defines a small assembly-level intermediate
// representation, a builder and text assembler for writing programs in
// it, and a functional executor that runs those programs and emits the
// dynamic instruction stream (isa.DynInst) consumed by the timing
// simulators.
//
// The synthetic SPEC-2006-like kernels in internal/workloads are real
// programs in this IR: their traces carry true register and memory
// dependences, real branch outcomes and real addresses, which is what
// the Fg-STP partitioning hardware keys on.
package program

import (
	"fmt"

	"repro/internal/isa"
)

// Opcode enumerates the static operations of the IR.
type Opcode uint8

// Opcodes. The comment after each gives the assembler form.
const (
	Nop Opcode = iota // nop

	// Integer register-register arithmetic.
	Add // add rd, rs, rt
	Sub // sub rd, rs, rt
	And // and rd, rs, rt
	Or  // or rd, rs, rt
	Xor // xor rd, rs, rt
	Shl // shl rd, rs, rt
	Shr // shr rd, rs, rt  (logical)
	Sar // sar rd, rs, rt  (arithmetic)
	Slt // slt rd, rs, rt  (rd = rs < rt, signed)
	Mul // mul rd, rs, rt
	Div // div rd, rs, rt  (signed; x/0 = 0)
	Rem // rem rd, rs, rt  (signed; x%0 = 0)

	// Integer register-immediate arithmetic.
	Addi // addi rd, rs, imm
	Andi // andi rd, rs, imm
	Ori  // ori rd, rs, imm
	Xori // xori rd, rs, imm
	Shli // shli rd, rs, imm
	Shri // shri rd, rs, imm
	Slti // slti rd, rs, imm
	Li   // li rd, imm      (load 64-bit immediate)

	// Floating point (operands in F registers unless noted).
	Fadd  // fadd fd, fs, ft
	Fsub  // fsub fd, fs, ft
	Fmul  // fmul fd, fs, ft
	Fdiv  // fdiv fd, fs, ft
	Fsqrt // fsqrt fd, fs
	Fneg  // fneg fd, fs
	Fabs  // fabs fd, fs
	Fmax  // fmax fd, fs, ft
	Fmin  // fmin fd, fs, ft
	Flt   // flt rd, fs, ft  (integer rd = fs < ft)
	Cvtif // cvtif fd, rs    (int -> float)
	Cvtfi // cvtfi rd, fs    (float -> int, truncating)
	Fli   // fli fd, imm     (load float immediate; Imm holds bits)

	// Memory (8-byte words). Integer and FP variants share address
	// arithmetic: addr = rs + imm.
	Ld  // ld rd, imm(rs)
	St  // st rt, imm(rs)   (stores rt)
	Fld // fld fd, imm(rs)
	Fst // fst ft, imm(rs)

	// Control flow. Branch targets are label indices resolved by the
	// builder into instruction indices (stored in Imm).
	Beq  // beq rs, rt, label
	Bne  // bne rs, rt, label
	Blt  // blt rs, rt, label (signed)
	Bge  // bge rs, rt, label (signed)
	J    // j label
	Jr   // jr rs            (indirect jump to address in rs)
	Call // call label       (RA = return address)
	Ret  // ret              (jump to RA)

	// Halt ends execution.
	Halt // halt

	numOpcodes
)

// NumOpcodes is the number of distinct opcodes.
const NumOpcodes = int(numOpcodes)

var opNames = [NumOpcodes]string{
	Nop: "nop",
	Add: "add", Sub: "sub", And: "and", Or: "or", Xor: "xor",
	Shl: "shl", Shr: "shr", Sar: "sar", Slt: "slt",
	Mul: "mul", Div: "div", Rem: "rem",
	Addi: "addi", Andi: "andi", Ori: "ori", Xori: "xori",
	Shli: "shli", Shri: "shri", Slti: "slti", Li: "li",
	Fadd: "fadd", Fsub: "fsub", Fmul: "fmul", Fdiv: "fdiv",
	Fsqrt: "fsqrt", Fneg: "fneg", Fabs: "fabs", Fmax: "fmax", Fmin: "fmin",
	Flt: "flt", Cvtif: "cvtif", Cvtfi: "cvtfi", Fli: "fli",
	Ld: "ld", St: "st", Fld: "fld", Fst: "fst",
	Beq: "beq", Bne: "bne", Blt: "blt", Bge: "bge",
	J: "j", Jr: "jr", Call: "call", Ret: "ret",
	Halt: "halt",
}

// String returns the assembler mnemonic.
func (o Opcode) String() string {
	if int(o) < NumOpcodes {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// classOf maps each opcode to the ISA operation class the timing models
// schedule on.
var classOf = [NumOpcodes]isa.Class{
	Nop: isa.ClassNop,
	Add: isa.ClassIntAlu, Sub: isa.ClassIntAlu, And: isa.ClassIntAlu,
	Or: isa.ClassIntAlu, Xor: isa.ClassIntAlu, Shl: isa.ClassIntAlu,
	Shr: isa.ClassIntAlu, Sar: isa.ClassIntAlu, Slt: isa.ClassIntAlu,
	Mul: isa.ClassIntMul, Div: isa.ClassIntDiv, Rem: isa.ClassIntDiv,
	Addi: isa.ClassIntAlu, Andi: isa.ClassIntAlu, Ori: isa.ClassIntAlu,
	Xori: isa.ClassIntAlu, Shli: isa.ClassIntAlu, Shri: isa.ClassIntAlu,
	Slti: isa.ClassIntAlu, Li: isa.ClassIntAlu,
	Fadd: isa.ClassFPAlu, Fsub: isa.ClassFPAlu, Fmax: isa.ClassFPAlu,
	Fmin: isa.ClassFPAlu, Fneg: isa.ClassFPAlu, Fabs: isa.ClassFPAlu,
	Flt: isa.ClassFPAlu, Cvtif: isa.ClassFPAlu, Cvtfi: isa.ClassFPAlu,
	Fli:  isa.ClassIntAlu,
	Fmul: isa.ClassFPMul,
	Fdiv: isa.ClassFPDiv, Fsqrt: isa.ClassFPDiv,
	Ld: isa.ClassLoad, Fld: isa.ClassLoad,
	St: isa.ClassStore, Fst: isa.ClassStore,
	Beq: isa.ClassBranch, Bne: isa.ClassBranch,
	Blt: isa.ClassBranch, Bge: isa.ClassBranch,
	J: isa.ClassJump, Jr: isa.ClassJump,
	Call: isa.ClassJump, Ret: isa.ClassJump,
	Halt: isa.ClassNop,
}

// Class returns the ISA class of the opcode.
func (o Opcode) Class() isa.Class {
	if int(o) < NumOpcodes {
		return classOf[o]
	}
	return isa.ClassNop
}

// IsBranch reports whether the opcode is a conditional branch.
func (o Opcode) IsBranch() bool { return o >= Beq && o <= Bge }

// IsJump reports whether the opcode is an unconditional control
// transfer (jump, call, return).
func (o Opcode) IsJump() bool { return o >= J && o <= Ret }

// Inst is one static instruction. The operand fields a given opcode
// uses follow the assembler forms documented on the Opcode constants;
// unused register fields hold isa.RegNone.
type Inst struct {
	Op Opcode
	// Rd is the destination register.
	Rd isa.Reg
	// Rs and Rt are source registers. Stores keep the data register in
	// Rt and the base address register in Rs.
	Rs, Rt isa.Reg
	// Imm is the immediate: arithmetic immediates, memory offsets,
	// float bit patterns for Fli, and resolved instruction indices for
	// branch/jump/call targets.
	Imm int64
}

// String renders the instruction in assembler syntax.
func (in Inst) String() string {
	switch {
	case in.Op == Nop || in.Op == Halt || in.Op == Ret:
		return in.Op.String()
	case in.Op == Li || in.Op == Fli:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Rd, in.Imm)
	case in.Op >= Addi && in.Op <= Slti:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Rs, in.Imm)
	case in.Op == Ld || in.Op == Fld:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rd, in.Imm, in.Rs)
	case in.Op == St || in.Op == Fst:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rt, in.Imm, in.Rs)
	case in.Op.IsBranch():
		return fmt.Sprintf("%s %s, %s, @%d", in.Op, in.Rs, in.Rt, in.Imm)
	case in.Op == J || in.Op == Call:
		return fmt.Sprintf("%s @%d", in.Op, in.Imm)
	case in.Op == Jr:
		return fmt.Sprintf("%s %s", in.Op, in.Rs)
	case in.Op == Fsqrt || in.Op == Fneg || in.Op == Fabs ||
		in.Op == Cvtif || in.Op == Cvtfi:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Rd, in.Rs)
	default:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rs, in.Rt)
	}
}
