// Package energy is an activity-based energy estimator for the
// simulated machines — an *extension* of the reproduction, not a paper
// result. The Fg-STP paper motivates the design with the power wall;
// this model quantifies the trade it implies: Fg-STP (and Core Fusion)
// buy single-thread speed with a second active core, extra fetch work
// for replicas, interconnect transfers and squash waste.
//
// The model charges a fixed energy per microarchitectural event
// (instruction through the front end, issue/execute, cache access at
// each level, DRAM access, value transfer) plus per-cycle static power
// per active core. Event counts come from the simulators' run
// summaries; weights are relative units calibrated to the usual
// first-order ratios (DRAM ≫ L2 ≫ L1 ≫ ALU), not to a specific
// process. Comparisons between modes — the intended use — depend only
// on the ratios.
package energy

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Weights is the per-event energy table, in arbitrary consistent units
// (think pJ).
type Weights struct {
	// Frontend is charged per fetched uop (fetch/decode/rename).
	Frontend float64
	// Issue is charged per issued uop (wakeup/select/execute average).
	Issue float64
	// L1Access, L2Access and DRAMAccess are charged per access at each
	// level (I- and D-side alike).
	L1Access   float64
	L2Access   float64
	DRAMAccess float64
	// CommTransfer is charged per cross-core register-value transfer.
	CommTransfer float64
	// StaticCore is charged per active core per cycle (clock tree +
	// leakage).
	StaticCore float64
	// StaticUncore is charged per cycle for the shared L2 and
	// interconnect.
	StaticUncore float64
}

// Default returns the baseline weight table.
func Default() Weights {
	return Weights{
		Frontend:     8,
		Issue:        10,
		L1Access:     12,
		L2Access:     40,
		DRAMAccess:   400,
		CommTransfer: 15,
		StaticCore:   6,
		StaticUncore: 3,
	}
}

// Validate reports nonsensical weights.
func (w *Weights) Validate() error {
	for name, v := range map[string]float64{
		"frontend": w.Frontend, "issue": w.Issue,
		"l1": w.L1Access, "l2": w.L2Access, "dram": w.DRAMAccess,
		"comm": w.CommTransfer, "static core": w.StaticCore,
		"static uncore": w.StaticUncore,
	} {
		if v < 0 {
			return fmt.Errorf("energy: negative %s weight", name)
		}
	}
	return nil
}

// Breakdown is an energy estimate split by component.
type Breakdown struct {
	// ByComponent maps component names to energy.
	ByComponent map[string]float64
	// Total is the sum.
	Total float64
	// EPI is energy per committed program instruction.
	EPI float64
	// EDP is the energy-delay product (total × cycles), the usual
	// efficiency figure of merit.
	EDP float64
}

// Estimate computes the energy breakdown of a finished run. The run
// must carry the event-count extras the simulators record
// (fetched_uops, issued_uops, l1i/l1d/l2/dram accesses, active_cores;
// comm_transfers for Fg-STP).
func Estimate(r *stats.Run, w Weights) (Breakdown, error) {
	if err := w.Validate(); err != nil {
		return Breakdown{}, err
	}
	if r.Get("active_cores") == 0 {
		return Breakdown{}, fmt.Errorf("energy: run %s/%s has no event counts", r.Workload, r.Mode)
	}
	by := map[string]float64{
		"frontend": r.Get("fetched_uops") * w.Frontend,
		"execute":  r.Get("issued_uops") * w.Issue,
		"l1":       (r.Get("l1i_accesses") + r.Get("l1d_accesses")) * w.L1Access,
		"l2":       r.Get("l2_accesses") * w.L2Access,
		"dram":     r.Get("dram_accesses") * w.DRAMAccess,
		"comm":     r.Get("comm_transfers") * w.CommTransfer,
		"static": float64(r.Cycles) *
			(r.Get("active_cores")*w.StaticCore + w.StaticUncore),
	}
	var total float64
	for _, v := range by {
		total += v
	}
	b := Breakdown{ByComponent: by, Total: total}
	if r.Insts > 0 {
		b.EPI = total / float64(r.Insts)
	}
	b.EDP = total * float64(r.Cycles)
	return b, nil
}

// Components returns the component names in a stable order.
func (b *Breakdown) Components() []string {
	names := make([]string, 0, len(b.ByComponent))
	for n := range b.ByComponent {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Compare summarises the efficiency of one run against a baseline:
// speedup, energy ratio, and EDP ratio (baseline/this; > 1 means this
// run is better).
type Compare struct {
	Speedup     float64
	EnergyRatio float64 // this/baseline: > 1 means this uses more energy
	EDPGain     float64 // baseline/this EDP: > 1 means net efficiency win
}

// Against compares run r (with breakdown b) to a baseline run/breakdown.
func Against(base *stats.Run, baseB Breakdown, r *stats.Run, b Breakdown) Compare {
	c := Compare{Speedup: stats.Speedup(base, r)}
	if baseB.Total > 0 {
		c.EnergyRatio = b.Total / baseB.Total
	}
	if b.EDP > 0 {
		c.EDPGain = baseB.EDP / b.EDP
	}
	return c
}
