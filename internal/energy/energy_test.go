package energy

import (
	"testing"

	"repro/internal/cmp"
	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/workloads"
)

func TestWeightsValidate(t *testing.T) {
	w := Default()
	if err := w.Validate(); err != nil {
		t.Fatalf("default weights invalid: %v", err)
	}
	w.DRAMAccess = -1
	if err := w.Validate(); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestEstimateArithmetic(t *testing.T) {
	r := stats.Run{Workload: "x", Mode: "single", Cycles: 100, Insts: 50}
	r.Set("fetched_uops", 60)
	r.Set("issued_uops", 55)
	r.Set("l1i_accesses", 10)
	r.Set("l1d_accesses", 20)
	r.Set("l2_accesses", 5)
	r.Set("dram_accesses", 1)
	r.Set("active_cores", 1)
	w := Weights{Frontend: 1, Issue: 1, L1Access: 1, L2Access: 10,
		DRAMAccess: 100, CommTransfer: 1, StaticCore: 2, StaticUncore: 1}
	b, err := Estimate(&r, w)
	if err != nil {
		t.Fatal(err)
	}
	want := 60.0 + 55 + 30 + 50 + 100 + 0 + 100*(1*2+1)
	if b.Total != want {
		t.Errorf("total = %v, want %v", b.Total, want)
	}
	if b.EPI != want/50 {
		t.Errorf("EPI = %v", b.EPI)
	}
	if b.EDP != want*100 {
		t.Errorf("EDP = %v", b.EDP)
	}
	if len(b.Components()) != 7 {
		t.Errorf("components = %v", b.Components())
	}
}

func TestEstimateRequiresCounts(t *testing.T) {
	r := stats.Run{Cycles: 10, Insts: 10}
	if _, err := Estimate(&r, Default()); err == nil {
		t.Error("run without counts accepted")
	}
}

// Integration: the modes' energy must order sensibly — the 2-core modes
// burn more total energy than the single core on the same work, and
// Fg-STP's dynamic energy includes communication.
func TestModeEnergyOrdering(t *testing.T) {
	m := config.Medium()
	w, _ := workloads.ByName("milc")
	tr := w.Trace(15_000)
	runs, err := cmp.RunAll(m, tr)
	if err != nil {
		t.Fatal(err)
	}
	single, fgstp := runs[cmp.ModeSingle], runs[cmp.ModeFgSTP]
	bs, err := Estimate(&single, Default())
	if err != nil {
		t.Fatal(err)
	}
	bg, err := Estimate(&fgstp, Default())
	if err != nil {
		t.Fatal(err)
	}
	if bg.Total <= bs.Total {
		t.Errorf("fgstp energy %.0f not above single %.0f (two active cores + replicas)",
			bg.Total, bs.Total)
	}
	c := Against(&single, bs, &fgstp, bg)
	if c.Speedup <= 0 || c.EnergyRatio <= 1 {
		t.Errorf("comparison implausible: %+v", c)
	}
	t.Logf("milc medium: speedup %.3f, energy ratio %.3f, EDP gain %.3f",
		c.Speedup, c.EnergyRatio, c.EDPGain)
}

// Static energy dominates when a machine idles: a slow run on more
// cores must pay for it.
func TestStaticScalesWithCoresAndCycles(t *testing.T) {
	mk := func(cycles uint64, cores float64) Breakdown {
		r := stats.Run{Cycles: cycles, Insts: 1}
		r.Set("active_cores", cores)
		b, err := Estimate(&r, Default())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	oneCore := mk(1000, 1)
	twoCores := mk(1000, 2)
	longer := mk(2000, 1)
	if twoCores.Total <= oneCore.Total {
		t.Error("two active cores must cost more static energy")
	}
	if longer.Total != oneCore.Total+1000*Default().StaticCore+1000*Default().StaticUncore {
		t.Errorf("static energy must scale linearly with cycles: %v vs %v",
			longer.Total, oneCore.Total)
	}
}
