package mem

import "fmt"

// HierarchyConfig sizes a core's view of the memory system. L2 may be
// private or shared between cores; sharing is decided by the CMP
// composition, which passes the same *Cache to both hierarchies.
type HierarchyConfig struct {
	L1I CacheConfig
	L1D CacheConfig
	L2  CacheConfig
	// DRAMLatency is the flat miss-to-memory cost in cycles.
	DRAMLatency int
	// NextLinePrefetch enables a next-line prefetch into L2 on every
	// L1D miss.
	NextLinePrefetch bool
}

// Validate reports configuration errors.
func (c *HierarchyConfig) Validate() error {
	for _, cc := range []*CacheConfig{&c.L1I, &c.L1D, &c.L2} {
		if err := cc.Validate(); err != nil {
			return err
		}
	}
	if c.DRAMLatency < 1 {
		return fmt.Errorf("hierarchy: DRAM latency %d < 1", c.DRAMLatency)
	}
	return nil
}

// Hierarchy is one core's memory system: private L1I and L1D over an
// L2 that other cores may share. All methods return the access latency
// in cycles and update cache state.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache // possibly shared with a peer hierarchy

	dramLatency int
	prefetch    bool

	// peers are other cores' L1Ds invalidated by our stores (a minimal
	// write-invalidate protocol; see InvalidatePeers).
	peers []*Cache

	// Prefetches counts issued next-line prefetches.
	Prefetches uint64
	// DRAMAccesses counts accesses that went all the way to memory.
	DRAMAccesses uint64
}

// NewHierarchy builds a private hierarchy from cfg; it reports an
// error on an invalid configuration.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l1i, err := NewCache(cfg.L1I)
	if err != nil {
		return nil, err
	}
	l1d, err := NewCache(cfg.L1D)
	if err != nil {
		return nil, err
	}
	l2, err := NewCache(cfg.L2)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{
		L1I:         l1i,
		L1D:         l1d,
		L2:          l2,
		dramLatency: cfg.DRAMLatency,
		prefetch:    cfg.NextLinePrefetch,
	}, nil
}

// NewSharedL2Pair builds two hierarchies with private L1s and a single
// shared L2, each peer-linked to the other's L1D for store
// invalidations. This is the memory system of the reconfigured 2-core
// modes (Core Fusion and Fg-STP).
func NewSharedL2Pair(cfg HierarchyConfig) (*Hierarchy, *Hierarchy, error) {
	a, err := NewHierarchy(cfg)
	if err != nil {
		return nil, nil, err
	}
	b, err := NewHierarchy(cfg)
	if err != nil {
		return nil, nil, err
	}
	b.L2 = a.L2 // the L2 is shared: both hierarchies alias one cache
	a.peers = []*Cache{b.L1D}
	b.peers = []*Cache{a.L1D}
	return a, b, nil
}

// Fetch models an instruction fetch of the line containing pc and
// returns its latency. On a miss the front end's stream prefetcher
// brings the next line in as well, hiding sequential instruction
// misses after the first — the behaviour of every contemporary fetch
// unit, and required for straight-line code not to pay DRAM per line.
func (h *Hierarchy) Fetch(pc uint64) int {
	lat := h.L1I.Config().LatencyCycles
	if hit, _ := h.L1I.Access(pc, false); !hit {
		lat += h.accessL2(pc, false)
	}
	// Stream-prefetch the next line whenever it is absent, so only the
	// first line of a sequential run pays the miss.
	next := h.L1I.LineAddr(pc) + uint64(h.L1I.Config().LineBytes)
	if !h.L1I.Lookup(next) {
		h.Prefetches++
		h.L1I.Access(next, false)
		h.L2.Access(next, false)
	}
	return lat
}

// Load models a data load and returns its latency.
func (h *Hierarchy) Load(addr uint64) int {
	if hit, _ := h.L1D.Access(addr, false); hit {
		return h.L1D.Config().LatencyCycles
	}
	lat := h.L1D.Config().LatencyCycles + h.accessL2(addr, false)
	h.maybePrefetch(addr)
	return lat
}

// Store models a data store (write-allocate) and returns its latency.
// Stores retire through a store buffer, so the returned latency only
// gates store-queue drain, not commit.
func (h *Hierarchy) Store(addr uint64) int {
	h.invalidatePeers(addr)
	if hit, _ := h.L1D.Access(addr, true); hit {
		return h.L1D.Config().LatencyCycles
	}
	lat := h.L1D.Config().LatencyCycles + h.accessL2(addr, true)
	h.maybePrefetch(addr)
	return lat
}

// accessL2 handles an L1 miss: probe L2 and memory, returning the
// added latency beyond L1.
func (h *Hierarchy) accessL2(addr uint64, write bool) int {
	if hit, _ := h.L2.Access(addr, write); hit {
		return h.L2.Config().LatencyCycles
	}
	h.DRAMAccesses++
	return h.L2.Config().LatencyCycles + h.dramLatency
}

func (h *Hierarchy) maybePrefetch(addr uint64) {
	if !h.prefetch {
		return
	}
	next := h.L2.LineAddr(addr) + uint64(h.L2.Config().LineBytes)
	if !h.L2.Lookup(next) {
		h.Prefetches++
		h.L2.Access(next, false)
	}
}

// invalidatePeers removes the stored-to line from peer L1Ds, the
// latency-visible half of a write-invalidate protocol. The data itself
// is architecturally correct by construction (trace-driven).
func (h *Hierarchy) invalidatePeers(addr uint64) {
	for _, p := range h.peers {
		p.Invalidate(p.LineAddr(addr))
	}
}
