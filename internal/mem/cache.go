// Package mem implements the memory hierarchy substrate: set-
// associative write-back caches with LRU replacement, a next-line
// prefetcher, a flat DRAM latency model and the multi-level hierarchy
// composition the CMP modes build on (private L1s over a possibly
// shared L2).
//
// The hierarchy is a latency model: an access returns the number of
// cycles it costs and updates cache state. Bandwidth is modelled at the
// core (load/store ports); outstanding misses overlap freely, i.e.
// MSHRs are unbounded. That approximation holds identically across all
// machine modes compared in the experiments.
package mem

import "fmt"

// CacheConfig sizes one cache level.
type CacheConfig struct {
	Name      string
	SizeBytes int
	LineBytes int
	Assoc     int
	// LatencyCycles is the hit latency of this level.
	LatencyCycles int
}

// Validate reports configuration errors.
func (c *CacheConfig) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache %s: non-positive geometry", c.Name)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines%c.Assoc != 0 {
		return fmt.Errorf("cache %s: %d lines not divisible by assoc %d", c.Name, lines, c.Assoc)
	}
	sets := lines / c.Assoc
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: %d sets not a power of two", c.Name, sets)
	}
	if c.LatencyCycles < 1 {
		return fmt.Errorf("cache %s: latency %d < 1", c.Name, c.LatencyCycles)
	}
	return nil
}

// CacheStats counts the traffic a cache has seen.
type CacheStats struct {
	Accesses    uint64
	Misses      uint64
	Evictions   uint64
	Writebacks  uint64
	Invalidates uint64
}

// MissRate returns misses per access.
func (s *CacheStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	age   uint32
}

// Cache is one set-associative, write-back, write-allocate cache level
// with true-LRU replacement.
type Cache struct {
	cfg       CacheConfig
	sets      int
	lineShift uint
	lines     []line // sets*assoc, way-major within a set
	clock     uint32

	Stats CacheStats
}

// NewCache builds a cache; it reports an error on an invalid
// configuration.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.SizeBytes / cfg.LineBytes / cfg.Assoc
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	return &Cache{
		cfg:       cfg,
		sets:      sets,
		lineShift: shift,
		lines:     make([]line, sets*cfg.Assoc),
	}, nil
}

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

func (c *Cache) setOf(addr uint64) int {
	return int((addr >> c.lineShift) & uint64(c.sets-1))
}

func (c *Cache) tagOf(addr uint64) uint64 {
	return (addr >> c.lineShift) / uint64(c.sets)
}

// Lookup reports whether addr hits, without changing any state.
func (c *Cache) Lookup(addr uint64) bool {
	base := c.setOf(addr) * c.cfg.Assoc
	tag := c.tagOf(addr)
	for w := 0; w < c.cfg.Assoc; w++ {
		if l := &c.lines[base+w]; l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Access performs a load (write=false) or store (write=true) of addr.
// It returns hit and, when the allocation evicted a dirty victim,
// writeback=true (the hierarchy charges the writeback to the next
// level's traffic counters, not to the access's latency — write-back
// buffers hide it).
func (c *Cache) Access(addr uint64, write bool) (hit, writeback bool) {
	c.Stats.Accesses++
	c.clock++
	base := c.setOf(addr) * c.cfg.Assoc
	tag := c.tagOf(addr)
	for w := 0; w < c.cfg.Assoc; w++ {
		l := &c.lines[base+w]
		if l.valid && l.tag == tag {
			l.age = c.clock
			if write {
				l.dirty = true
			}
			return true, false
		}
	}
	c.Stats.Misses++
	writeback = c.allocate(base, tag, write)
	return false, writeback
}

// allocate fills a line for tag in the set starting at base, returning
// whether a dirty victim was evicted.
func (c *Cache) allocate(base int, tag uint64, write bool) bool {
	victim := base
	for w := 0; w < c.cfg.Assoc; w++ {
		l := &c.lines[base+w]
		if !l.valid {
			victim = base + w
			break
		}
		if l.age < c.lines[victim].age {
			victim = base + w
		}
	}
	v := &c.lines[victim]
	wb := v.valid && v.dirty
	if v.valid {
		c.Stats.Evictions++
		if wb {
			c.Stats.Writebacks++
		}
	}
	*v = line{tag: tag, valid: true, dirty: write, age: c.clock}
	return wb
}

// Invalidate drops the line containing addr if present, returning
// whether it was present (dirty contents are discarded: the simulator
// carries architectural data in the functional trace, so coherence here
// only needs to model the latency effect of losing the line).
func (c *Cache) Invalidate(addr uint64) bool {
	base := c.setOf(addr) * c.cfg.Assoc
	tag := c.tagOf(addr)
	for w := 0; w < c.cfg.Assoc; w++ {
		l := &c.lines[base+w]
		if l.valid && l.tag == tag {
			l.valid = false
			c.Stats.Invalidates++
			return true
		}
	}
	return false
}

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ (uint64(c.cfg.LineBytes) - 1)
}
