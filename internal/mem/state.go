package mem

import "fmt"

// CacheState is a deep snapshot of one cache's warm state: the tag,
// valid, dirty and LRU-age arrays (way-major within a set, the lines
// layout), the LRU clock and the traffic counters. Geometry is NOT part
// of the state — a CacheState only restores into a cache built from the
// same CacheConfig (SetState validates the line count).
type CacheState struct {
	Tags  []uint64
	Valid []bool
	Dirty []bool
	Ages  []uint32
	Clock uint32
	Stats CacheStats
}

// State returns a deep copy of the cache's current state.
func (c *Cache) State() CacheState {
	s := CacheState{
		Tags:  make([]uint64, len(c.lines)),
		Valid: make([]bool, len(c.lines)),
		Dirty: make([]bool, len(c.lines)),
		Ages:  make([]uint32, len(c.lines)),
		Clock: c.clock,
		Stats: c.Stats,
	}
	for i := range c.lines {
		s.Tags[i] = c.lines[i].tag
		s.Valid[i] = c.lines[i].valid
		s.Dirty[i] = c.lines[i].dirty
		s.Ages[i] = c.lines[i].age
	}
	return s
}

// SetState restores a snapshot taken from a cache with the same
// geometry; it reports an error on a line-count mismatch.
func (c *Cache) SetState(s *CacheState) error {
	if len(s.Tags) != len(c.lines) || len(s.Valid) != len(c.lines) ||
		len(s.Dirty) != len(c.lines) || len(s.Ages) != len(c.lines) {
		return fmt.Errorf("cache %s: state geometry mismatch (%d lines vs %d)",
			c.cfg.Name, len(s.Tags), len(c.lines))
	}
	for i := range c.lines {
		c.lines[i] = line{tag: s.Tags[i], valid: s.Valid[i], dirty: s.Dirty[i], age: s.Ages[i]}
	}
	c.clock = s.Clock
	c.Stats = s.Stats
	return nil
}

// HierarchyState is a deep snapshot of a private hierarchy's warm
// state: all three cache levels plus the hierarchy-level counters. For
// a shared-L2 pair, compose cache-level states instead and apply the L2
// once (both hierarchies alias one cache).
type HierarchyState struct {
	L1I, L1D, L2 CacheState
	Prefetches   uint64
	DRAMAccesses uint64
}

// State returns a deep copy of the hierarchy's current state.
func (h *Hierarchy) State() HierarchyState {
	return HierarchyState{
		L1I:          h.L1I.State(),
		L1D:          h.L1D.State(),
		L2:           h.L2.State(),
		Prefetches:   h.Prefetches,
		DRAMAccesses: h.DRAMAccesses,
	}
}

// SetState restores a snapshot taken from a hierarchy with the same
// configuration.
func (h *Hierarchy) SetState(s *HierarchyState) error {
	if err := h.L1I.SetState(&s.L1I); err != nil {
		return err
	}
	if err := h.L1D.SetState(&s.L1D); err != nil {
		return err
	}
	if err := h.L2.SetState(&s.L2); err != nil {
		return err
	}
	h.Prefetches = s.Prefetches
	h.DRAMAccesses = s.DRAMAccesses
	return nil
}
