package mem

import "testing"

func BenchmarkCacheAccessHit(b *testing.B) {
	c := mustCache(b, CacheConfig{Name: "b", SizeBytes: 32 << 10, LineBytes: 64, Assoc: 4, LatencyCycles: 3})
	c.Access(0x1000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0x1000, false)
	}
}

func BenchmarkCacheAccessMissStream(b *testing.B) {
	c := mustCache(b, CacheConfig{Name: "b", SizeBytes: 32 << 10, LineBytes: 64, Assoc: 4, LatencyCycles: 3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i)*64, false)
	}
}

func BenchmarkHierarchyLoad(b *testing.B) {
	h := mustHier(b, HierarchyConfig{
		L1I:         CacheConfig{Name: "l1i", SizeBytes: 32 << 10, LineBytes: 64, Assoc: 4, LatencyCycles: 3},
		L1D:         CacheConfig{Name: "l1d", SizeBytes: 32 << 10, LineBytes: 64, Assoc: 4, LatencyCycles: 3},
		L2:          CacheConfig{Name: "l2", SizeBytes: 1 << 20, LineBytes: 64, Assoc: 8, LatencyCycles: 12},
		DRAMLatency: 150,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Load(uint64(i%4096) * 8)
	}
}
