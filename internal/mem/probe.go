package mem

// Probe replays a recorded access sequence against the live cache state
// without mutating it. The hot-block engine uses it to prove the
// "recurring hierarchy response" precondition of periodic-miss and pair
// templates: before a replay is allowed, every recorded Fetch/Load in
// the captured span is re-simulated here and must produce the recorded
// latency. Because the probe mirrors Hierarchy/Cache semantics exactly
// (LRU aging, first-invalid-wins allocation, the unconditional L1I
// next-line stream prefetch, the optional L2 next-line prefetch, and
// peer-L1D invalidation on stores), a passing probe guarantees the real
// accesses performed afterwards by the replay apply step return the
// same latencies and leave the caches in the probed state.
//
// The probe is a copy-on-write overlay: the first touch of a cache set
// copies its ways; an overlay clock per cache shadows the LRU clock.
// Sets never touched are read through to the live cache. A probe is
// reusable across checks via Reset (the maps are retained to avoid
// per-replay allocation).
type Probe struct {
	sets   map[probeKey][]line
	clocks map[*Cache]uint32
}

type probeKey struct {
	c   *Cache
	set int
}

// NewProbe returns an empty probe overlay.
func NewProbe() *Probe {
	return &Probe{
		sets:   make(map[probeKey][]line),
		clocks: make(map[*Cache]uint32),
	}
}

// Reset discards all overlay state, making the probe read the live
// caches again.
func (p *Probe) Reset() {
	clear(p.sets)
	clear(p.clocks)
}

// set returns the overlay copy of cache c's set s, copying the live
// ways on first touch.
func (p *Probe) set(c *Cache, s int) []line {
	k := probeKey{c, s}
	ln, ok := p.sets[k]
	if !ok {
		base := s * c.cfg.Assoc
		ln = make([]line, c.cfg.Assoc)
		copy(ln, c.lines[base:base+c.cfg.Assoc])
		p.sets[k] = ln
	}
	return ln
}

// tick advances the overlay LRU clock of c, seeding it from the live
// clock on first touch.
func (p *Probe) tick(c *Cache) uint32 {
	cl, ok := p.clocks[c]
	if !ok {
		cl = c.clock
	}
	cl++
	p.clocks[c] = cl
	return cl
}

// access mirrors Cache.Access against the overlay (no statistics).
func (p *Probe) access(c *Cache, addr uint64, write bool) (hit bool) {
	cl := p.tick(c)
	ln := p.set(c, c.setOf(addr))
	tag := c.tagOf(addr)
	for w := range ln {
		l := &ln[w]
		if l.valid && l.tag == tag {
			l.age = cl
			if write {
				l.dirty = true
			}
			return true
		}
	}
	victim := 0
	for w := range ln {
		if !ln[w].valid {
			victim = w
			break
		}
		if ln[w].age < ln[victim].age {
			victim = w
		}
	}
	ln[victim] = line{tag: tag, valid: true, dirty: write, age: cl}
	return false
}

// lookup mirrors Cache.Lookup against the overlay.
func (p *Probe) lookup(c *Cache, addr uint64) bool {
	ln, ok := p.sets[probeKey{c, c.setOf(addr)}]
	if !ok {
		return c.Lookup(addr)
	}
	tag := c.tagOf(addr)
	for w := range ln {
		if ln[w].valid && ln[w].tag == tag {
			return true
		}
	}
	return false
}

// invalidate mirrors Cache.Invalidate against the overlay (no clock
// tick, matching the live cache).
func (p *Probe) invalidate(c *Cache, addr uint64) {
	ln := p.set(c, c.setOf(addr))
	tag := c.tagOf(addr)
	for w := range ln {
		if ln[w].valid && ln[w].tag == tag {
			ln[w].valid = false
			return
		}
	}
}

// Fetch mirrors Hierarchy.Fetch against the overlay and returns the
// latency the live hierarchy would return.
func (p *Probe) Fetch(h *Hierarchy, pc uint64) int {
	lat := h.L1I.cfg.LatencyCycles
	if !p.access(h.L1I, pc, false) {
		lat += p.accessL2(h, pc, false)
	}
	next := h.L1I.LineAddr(pc) + uint64(h.L1I.cfg.LineBytes)
	if !p.lookup(h.L1I, next) {
		p.access(h.L1I, next, false)
		p.access(h.L2, next, false)
	}
	return lat
}

// Load mirrors Hierarchy.Load against the overlay.
func (p *Probe) Load(h *Hierarchy, addr uint64) int {
	if p.access(h.L1D, addr, false) {
		return h.L1D.cfg.LatencyCycles
	}
	lat := h.L1D.cfg.LatencyCycles + p.accessL2(h, addr, false)
	p.maybePrefetch(h, addr)
	return lat
}

// Store mirrors Hierarchy.Store against the overlay, including the
// peer-L1D invalidations (so a pair probe sees the sibling's L1D evolve
// exactly as the real replay will make it).
func (p *Probe) Store(h *Hierarchy, addr uint64) int {
	for _, pc := range h.peers {
		p.invalidate(pc, pc.LineAddr(addr))
	}
	if p.access(h.L1D, addr, true) {
		return h.L1D.cfg.LatencyCycles
	}
	lat := h.L1D.cfg.LatencyCycles + p.accessL2(h, addr, true)
	p.maybePrefetch(h, addr)
	return lat
}

func (p *Probe) accessL2(h *Hierarchy, addr uint64, write bool) int {
	if p.access(h.L2, addr, write) {
		return h.L2.cfg.LatencyCycles
	}
	return h.L2.cfg.LatencyCycles + h.dramLatency
}

func (p *Probe) maybePrefetch(h *Hierarchy, addr uint64) {
	if !h.prefetch {
		return
	}
	next := h.L2.LineAddr(addr) + uint64(h.L2.cfg.LineBytes)
	if !p.lookup(h.L2, next) {
		p.access(h.L2, next, false)
	}
}
