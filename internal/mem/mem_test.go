package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func smallCache() CacheConfig {
	return CacheConfig{Name: "t", SizeBytes: 1024, LineBytes: 64, Assoc: 2, LatencyCycles: 2}
}

func mustCache(tb testing.TB, cfg CacheConfig) *Cache {
	tb.Helper()
	c, err := NewCache(cfg)
	if err != nil {
		tb.Fatalf("NewCache: %v", err)
	}
	return c
}

func mustHier(tb testing.TB, cfg HierarchyConfig) *Hierarchy {
	tb.Helper()
	h, err := NewHierarchy(cfg)
	if err != nil {
		tb.Fatalf("NewHierarchy: %v", err)
	}
	return h
}

func mustPair(tb testing.TB, cfg HierarchyConfig) (*Hierarchy, *Hierarchy) {
	tb.Helper()
	a, b, err := NewSharedL2Pair(cfg)
	if err != nil {
		tb.Fatalf("NewSharedL2Pair: %v", err)
	}
	return a, b
}

func TestCacheConfigValidate(t *testing.T) {
	good := smallCache()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []CacheConfig{
		{Name: "zero", SizeBytes: 0, LineBytes: 64, Assoc: 2, LatencyCycles: 1},
		{Name: "npo2line", SizeBytes: 1024, LineBytes: 48, Assoc: 2, LatencyCycles: 1},
		{Name: "assoc", SizeBytes: 1024, LineBytes: 64, Assoc: 5, LatencyCycles: 1},
		{Name: "npo2sets", SizeBytes: 1024 + 512, LineBytes: 64, Assoc: 2, LatencyCycles: 1},
		{Name: "lat", SizeBytes: 1024, LineBytes: 64, Assoc: 2, LatencyCycles: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %s accepted, want error", c.Name)
		}
	}
}

func TestCacheHitAfterMiss(t *testing.T) {
	c := mustCache(t, smallCache())
	if hit, _ := c.Access(0x1000, false); hit {
		t.Error("cold access must miss")
	}
	if hit, _ := c.Access(0x1000, false); !hit {
		t.Error("second access must hit")
	}
	// Same line, different word.
	if hit, _ := c.Access(0x1008, false); !hit {
		t.Error("same-line access must hit")
	}
	// Different line.
	if hit, _ := c.Access(0x1040, false); hit {
		t.Error("next-line access must miss")
	}
	if c.Stats.Misses != 2 || c.Stats.Accesses != 4 {
		t.Errorf("stats misses/accesses = %d/%d, want 2/4", c.Stats.Misses, c.Stats.Accesses)
	}
}

func TestCacheLRUReplacement(t *testing.T) {
	// 2-way: three distinct lines mapping to the same set evict the
	// least recently used.
	c := mustCache(t, smallCache())
	sets := uint64(1024 / 64 / 2) // 8 sets
	stride := sets * 64
	a, b, d := uint64(0), stride, 2*stride // all map to set 0
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a now MRU
	c.Access(d, false) // evicts b
	if !c.Lookup(a) {
		t.Error("a must survive (MRU)")
	}
	if c.Lookup(b) {
		t.Error("b must be evicted (LRU)")
	}
	if !c.Lookup(d) {
		t.Error("d must be resident")
	}
}

func TestCacheWritebackOnDirtyEviction(t *testing.T) {
	c := mustCache(t, smallCache())
	sets := uint64(1024 / 64 / 2)
	stride := sets * 64
	c.Access(0, true) // dirty
	c.Access(stride, false)
	_, wb := c.Access(2*stride, false) // evicts line 0 (dirty)
	if !wb {
		t.Error("evicting a dirty line must report writeback")
	}
	if c.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := mustCache(t, smallCache())
	c.Access(0x2000, true)
	if !c.Invalidate(0x2000) {
		t.Error("invalidate of resident line must return true")
	}
	if c.Lookup(0x2000) {
		t.Error("line must be gone after invalidate")
	}
	if c.Invalidate(0x2000) {
		t.Error("invalidate of absent line must return false")
	}
	if hit, _ := c.Access(0x2000, false); hit {
		t.Error("access after invalidate must miss")
	}
}

func TestCacheLookupIsPure(t *testing.T) {
	c := mustCache(t, smallCache())
	c.Lookup(0x3000)
	if c.Stats.Accesses != 0 {
		t.Error("Lookup must not count as access")
	}
	if hit, _ := c.Access(0x3000, false); hit {
		t.Error("Lookup must not allocate")
	}
}

// Property: after Access(addr), Lookup(addr) is true until an
// intervening eviction; a cache with one set and assoc A retains
// exactly the last A distinct lines.
func TestCacheRetainsLastAssocLines(t *testing.T) {
	cfg := CacheConfig{Name: "fa", SizeBytes: 4 * 64, LineBytes: 64, Assoc: 4, LatencyCycles: 1}
	c := mustCache(t, cfg)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var recent []uint64
		for i := 0; i < 200; i++ {
			addr := uint64(rng.Intn(32)) * 64
			c.Access(addr, rng.Intn(2) == 0)
			// Maintain the set of the 4 most recently used distinct lines.
			for j, r := range recent {
				if r == addr {
					recent = append(recent[:j], recent[j+1:]...)
					break
				}
			}
			recent = append(recent, addr)
			if len(recent) > 4 {
				recent = recent[1:]
			}
			for _, r := range recent {
				if !c.Lookup(r) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func testHierCfg() HierarchyConfig {
	return HierarchyConfig{
		L1I:         CacheConfig{Name: "l1i", SizeBytes: 4096, LineBytes: 64, Assoc: 2, LatencyCycles: 2},
		L1D:         CacheConfig{Name: "l1d", SizeBytes: 4096, LineBytes: 64, Assoc: 2, LatencyCycles: 2},
		L2:          CacheConfig{Name: "l2", SizeBytes: 64 * 1024, LineBytes: 64, Assoc: 8, LatencyCycles: 10},
		DRAMLatency: 100,
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := mustHier(t, testHierCfg())
	// Cold load: L1 + L2 + DRAM.
	if lat := h.Load(0x10000); lat != 2+10+100 {
		t.Errorf("cold load latency %d, want 112", lat)
	}
	// Warm load: L1 hit.
	if lat := h.Load(0x10000); lat != 2 {
		t.Errorf("warm load latency %d, want 2", lat)
	}
	if h.DRAMAccesses != 1 {
		t.Errorf("dram accesses = %d, want 1", h.DRAMAccesses)
	}
}

func TestHierarchyL2HitAfterL1Eviction(t *testing.T) {
	cfg := testHierCfg()
	h := mustHier(t, cfg)
	// Fill L1D far beyond capacity with distinct lines that fit in L2.
	for a := uint64(0); a < 16*1024; a += 64 {
		h.Load(a)
	}
	// Address 0 was evicted from L1D but must still be in L2.
	lat := h.Load(0)
	if lat != 2+10 {
		t.Errorf("L2-hit load latency %d, want 12", lat)
	}
}

func TestHierarchyFetchSeparateFromData(t *testing.T) {
	h := mustHier(t, testHierCfg())
	h.Load(0x5000)
	// Fetching the same address goes through L1I, which is cold — but
	// hits in the now-warm L2.
	if lat := h.Fetch(0x5000); lat != 2+10 {
		t.Errorf("fetch latency %d, want 12 (L1I miss, L2 hit)", lat)
	}
	if lat := h.Fetch(0x5000); lat != 2 {
		t.Errorf("warm fetch latency %d, want 2", lat)
	}
}

func TestHierarchyStoreWriteAllocate(t *testing.T) {
	h := mustHier(t, testHierCfg())
	h.Store(0x7000)
	if lat := h.Load(0x7000); lat != 2 {
		t.Errorf("load after store latency %d, want 2 (write-allocate)", lat)
	}
}

func TestSharedL2PairInvalidation(t *testing.T) {
	a, b := mustPair(t, testHierCfg())
	if a.L2 != b.L2 {
		t.Fatal("pair must share the L2")
	}
	// Core B loads a line; core A stores to it; B's next load must miss
	// in L1 (invalidated) but hit the shared L2.
	b.Load(0x9000)
	if lat := b.Load(0x9000); lat != 2 {
		t.Fatalf("warm load latency %d, want 2", lat)
	}
	a.Store(0x9000)
	if lat := b.Load(0x9000); lat != 2+10 {
		t.Errorf("post-invalidate load latency %d, want 12", lat)
	}
	if b.L1D.Stats.Invalidates != 1 {
		t.Errorf("peer invalidates = %d, want 1", b.L1D.Stats.Invalidates)
	}
}

func TestNextLinePrefetch(t *testing.T) {
	cfg := testHierCfg()
	cfg.NextLinePrefetch = true
	h := mustHier(t, cfg)
	h.Load(0x20000) // misses; prefetches 0x20040 into L2
	if h.Prefetches != 1 {
		t.Fatalf("prefetches = %d, want 1", h.Prefetches)
	}
	// The next line now hits in L2 (L1 still misses).
	if lat := h.Load(0x20040); lat != 2+10 {
		t.Errorf("prefetched-line load latency %d, want 12", lat)
	}
}

func TestHierarchyConfigValidate(t *testing.T) {
	cfg := testHierCfg()
	cfg.DRAMLatency = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero DRAM latency must be rejected")
	}
	cfg = testHierCfg()
	cfg.L1D.Assoc = 3
	if err := cfg.Validate(); err == nil {
		t.Error("bad L1D geometry must be rejected")
	}
}

// Property: latency of any load is one of the three composition levels.
func TestHierarchyLatencyLevels(t *testing.T) {
	h := mustHier(t, testHierCfg())
	rng := rand.New(rand.NewSource(7))
	valid := map[int]bool{2: true, 12: true, 112: true}
	for i := 0; i < 5000; i++ {
		lat := h.Load(uint64(rng.Intn(1<<18)) &^ 7)
		if !valid[lat] {
			t.Fatalf("load latency %d not one of the composition levels", lat)
		}
	}
}
