// Quickstart: build a machine, run one workload in all three execution
// modes, and print the comparison — the five-minute tour of the
// library.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/cmp"
	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/workloads"
)

func main() {
	// 1. Pick a machine preset (the paper's medium 2-core CMP) and a
	//    workload (the mcf-like pointer chaser).
	machine := config.Medium()
	w, ok := workloads.ByName("hmmer")
	if !ok {
		log.Fatal("workload not found")
	}
	fmt.Printf("machine:  %s (2 x %d-wide cores, shared %d KiB L2)\n",
		machine.Name, machine.Core.IssueWidth, machine.Hier.L2.SizeBytes>>10)
	fmt.Printf("workload: %s — %s\n\n", w.Name, w.Description)

	// 2. Capture a dynamic trace of the workload's timed region. The
	//    same trace drives every mode, so comparisons are exact.
	tr := w.Trace(100_000)

	// 3. Run the three modes the paper compares: a single conventional
	//    core, the two cores fused Core Fusion style, and the two cores
	//    reconfigured as an Fg-STP pair.
	runs, err := cmp.RunAll(machine, tr)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Report.
	single := runs[cmp.ModeSingle]
	tb := stats.NewTable("results", "mode", "cycles", "IPC", "speedup")
	for _, mode := range cmp.Modes() {
		r := runs[mode]
		tb.AddRowf(string(mode), fmt.Sprintf("%d", r.Cycles), r.IPC(),
			stats.Speedup(&single, &r))
	}
	fmt.Print(tb.String())

	g := runs[cmp.ModeFgSTP]
	fmt.Printf("\nFg-STP internals: %.0f%% of instructions on core 1, "+
		"%.1f%% replicated, %.1f value transfers per kinst, %v squashes\n",
		g.Get("steer_core1_frac")*100, g.Get("replicated_frac")*100,
		g.Get("comm_per_kinst"), g.Get("squashes"))
}
