// Ablation: dissect the Fg-STP mechanisms on one workload by turning
// them off one at a time and re-running — a direct, instrumented view
// of what each design decision buys (experiment E4 at single-workload
// granularity, using the Machine API for internals).
//
//	go run ./examples/ablation [-workload hmmer] [-insts 60000]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/cmp"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workloads"
)

func main() {
	name := flag.String("workload", "hmmer", "workload to dissect")
	insts := flag.Uint64("insts", 60_000, "instructions to simulate")
	flag.Parse()

	w, ok := workloads.ByName(*name)
	if !ok {
		log.Fatalf("unknown workload %q", *name)
	}
	tr := w.Trace(*insts)
	fmt.Printf("workload %s: %s\n\n", w.Name, w.Description)

	base := config.Medium()
	single, err := cmp.Run(base, cmp.ModeSingle, tr)
	if err != nil {
		log.Fatal(err)
	}

	variants := []struct {
		name   string
		mutate func(*config.Machine)
	}{
		{"full Fg-STP", func(*config.Machine) {}},
		{"no replication", func(m *config.Machine) { m.FgSTP.Replication = false }},
		{"no dependence speculation", func(m *config.Machine) { m.FgSTP.DepSpeculation = false }},
		{"round-robin steering", func(m *config.Machine) { m.FgSTP.Steering = "roundrobin" }},
		{"64-instruction chunks", func(m *config.Machine) { m.FgSTP.Steering = "chunk64" }},
		{"4-cycle communication", func(m *config.Machine) { m.FgSTP.CommLatency = 4 }},
		{"64-instruction window", func(m *config.Machine) { m.FgSTP.Window = 64 }},
	}

	tb := stats.NewTable("ablation vs single core",
		"variant", "IPC", "speedup", "comm/kinst", "replicated", "squashes")
	for _, v := range variants {
		cfg := config.Medium()
		v.mutate(&cfg)
		// Use the Machine API directly so the steering internals are
		// inspectable.
		m, err := core.NewMachine(cfg, tr)
		if err != nil {
			log.Fatal(err)
		}
		cycles, err := m.Drain()
		if err != nil {
			log.Fatal(err)
		}
		r := m.Summarize(cycles)
		tb.AddRowf(v.name, r.IPC(), stats.Speedup(&single, &r),
			r.Get("comm_per_kinst"), r.Get("replicated_frac"), r.Get("squashes"))
	}
	fmt.Print(tb.String())
	fmt.Printf("\nsingle-core baseline: IPC %.3f over %d cycles\n", single.IPC(), single.Cycles)
}
