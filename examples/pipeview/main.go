// Pipeview: an ASCII per-cycle timeline of the Fg-STP machine — watch
// the two cores fetch, issue and commit a real workload cycle by cycle,
// with squashes marked. Useful for building intuition about how the
// partitioned pipelines interleave.
//
//	go run ./examples/pipeview [-workload hmmer] [-insts 3000] [-cycles 120]
//
// Output columns per cycle, for each core: issued uops that cycle as a
// bar (one '#' per uop), and the committed-instruction running totals.
// The footer breaks each core's cycles down by CPI-stack bucket, and
// -tracejson writes the run's pipeline events as a Chrome trace-event
// file (open in Perfetto or chrome://tracing).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workloads"
)

func main() {
	name := flag.String("workload", "hmmer", "workload to visualise")
	insts := flag.Uint64("insts", 3_000, "instructions to simulate")
	cycles := flag.Int("cycles", 120, "cycles of timeline to print (after warmup)")
	warmup := flag.Int("warmup", 0, "extra cycles to skip after first activity")
	traceJSON := flag.String("tracejson", "", "write a Chrome trace-event file of the pipeline to this file")
	flag.Parse()

	w, ok := workloads.ByName(*name)
	if !ok {
		log.Fatalf("unknown workload %q", *name)
	}
	tr := w.Trace(*insts)
	m, err := core.NewMachine(config.Medium(), tr)
	if err != nil {
		log.Fatal(err)
	}
	var rec *metrics.Recorder
	if *traceJSON != "" {
		rec = &metrics.Recorder{}
		m.SetEventSink(rec)
	}

	fmt.Printf("workload %s — per-cycle issue activity (medium Fg-STP pair)\n", w.Name)
	fmt.Printf("%6s  %-14s|%14s  %10s %8s\n", "cycle", "core 0 issue", "core 1 issue", "committed", "squash")
	fmt.Println(strings.Repeat("-", 64))

	prev := m.CoreReports()
	prevSquash := uint64(0)
	now := int64(0)
	printed := 0
	active := false
	skip := *warmup
	for !m.Done() && printed < *cycles {
		m.Cycle(now)
		cur := m.CoreReports()
		sq := m.Squashes()
		// Start the timeline at the first issue (cold caches make the
		// first few hundred cycles silent).
		if !active && cur[0].Issued+cur[1].Issued > 0 {
			active = true
		}
		if active && skip > 0 {
			skip--
		} else if active {
			i0 := int(cur[0].Issued - prev[0].Issued)
			i1 := int(cur[1].Issued - prev[1].Issued)
			mark := ""
			if sq > prevSquash {
				mark = "  <-- SQUASH"
			}
			fmt.Printf("%6d  %-14s|%14s  %10d %8s%s\n",
				now,
				strings.Repeat("#", i0),
				strings.Repeat("#", i1),
				m.NextCommit(),
				squashStr(sq-prevSquash), mark)
			printed++
		}
		prev = cur
		prevSquash = sq
		now++
	}
	for !m.Done() {
		m.Cycle(now)
		now++
	}
	fmt.Printf("\nfinished: %d instructions in %d cycles (IPC %.3f), %d squashes\n",
		tr.Len(), now, float64(tr.Len())/float64(now), m.Squashes())

	fmt.Println("\ncycle breakdown (CPI stack):")
	for i, rpt := range m.CoreReports() {
		fmt.Printf("  core %d: active %d, fetch-starved %d, issue-wait %d, "+
			"channel-wait %d, execute %d, commit-blocked %d\n",
			i, rpt.CyclesActive, rpt.CyclesFetchStarved, rpt.CyclesIssueWait,
			rpt.CyclesChannelWait, rpt.CyclesExecute, rpt.CyclesCommitBlocked)
	}

	if rec != nil {
		f, err := os.Create(*traceJSON)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		meta := map[string]string{"workload": w.Name, "machine": "medium", "mode": "fgstp"}
		if err := metrics.WriteChromeTraceRecorder(f, rec, meta); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pipeline trace written to %s\n", *traceJSON)
	}
}

func squashStr(n uint64) string {
	if n == 0 {
		return ""
	}
	return fmt.Sprintf("%d", n)
}
