// Tracetool: inspect a workload's dynamic trace — instruction mix,
// branch behaviour, memory footprint and register-dependence distance
// profile — the properties the Fg-STP partitioner keys on. Also shows a
// disassembly excerpt and the steering unit's partition of the first
// instructions.
//
//	go run ./examples/tracetool [-workload mcf] [-insts 50000] [-steer 24]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/workloads"
)

func main() {
	name := flag.String("workload", "mcf", "workload to inspect")
	insts := flag.Uint64("insts", 50_000, "instructions to trace")
	steerN := flag.Int("steer", 24, "steered instructions to display")
	flag.Parse()

	w, ok := workloads.ByName(*name)
	if !ok {
		log.Fatalf("unknown workload %q", *name)
	}
	fmt.Printf("workload %s (%s)\n%s\n\n", w.Name, w.Suite, w.Description)

	// Static view: a disassembly excerpt around the timed region.
	p := w.Program()
	dis := strings.Split(p.Disassemble(), "\n")
	start := 0
	for i, line := range dis {
		if strings.HasPrefix(line, "main:") {
			start = i
			break
		}
	}
	end := start + 20
	if end > len(dis) {
		end = len(dis)
	}
	fmt.Println("disassembly (timed region start):")
	for _, line := range dis[start:end] {
		fmt.Println("  " + line)
	}
	fmt.Println()

	// Dynamic view.
	tr := w.Trace(*insts)
	s := tr.ComputeStats()
	tb := stats.NewTable("dynamic profile", "metric", "value")
	tb.AddRowf("instructions", s.Insts)
	tb.AddRowf("static PCs", s.StaticPCs)
	tb.AddRowf("branch ratio", s.BranchRatio())
	tb.AddRowf("taken ratio", s.TakenRatio())
	tb.AddRowf("memory ratio", s.MemRatio())
	tb.AddRowf("unique words touched", s.UniqueWords)
	tb.AddRowf("short-dep ratio (<=8)", s.ShortDepRatio())
	fmt.Print(tb.String())

	mix := stats.NewTable("\ninstruction mix", "class", "count", "fraction")
	for c := 0; c < isa.NumClasses; c++ {
		if s.ByClass[c] == 0 {
			continue
		}
		mix.AddRowf(isa.Class(c).String(), s.ByClass[c],
			float64(s.ByClass[c])/float64(s.Insts))
	}
	fmt.Print(mix.String())

	fmt.Println("\ndependence distance histogram (2^k dynamic instructions):")
	for b, c := range s.DepDists {
		if c == 0 {
			continue
		}
		bar := strings.Repeat("#", 1+c*50/s.TotalDeps)
		fmt.Printf("  2^%-2d %8d %s\n", b, c, bar)
	}

	// Partition view: how the Fg-STP steering unit splits the stream.
	m, err := core.NewMachine(config.Medium(), tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsteering of the first %d instructions (core 0 | core 1):\n", *steerN)
	for i := 0; i < *steerN && i < tr.Len(); i++ {
		home, replica := core.SteerDecision(m, uint64(i))
		d := tr.At(i)
		tag := ""
		if replica {
			tag = " [replicated]"
		}
		if home == 0 {
			fmt.Printf("  %-34s |%s\n", d.String(), tag)
		} else {
			fmt.Printf("  %34s | %s%s\n", "", d.String(), tag)
		}
	}
}
