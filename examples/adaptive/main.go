// Adaptive: study dynamic reconfiguration policies — when should the
// two cores fuse into Fg-STP mode and when should they stay
// independent? Runs a workload phase by phase under four policies
// (always-single, always-fgstp, history predictor, oracle) and prints
// the comparison plus the oracle's per-phase choices. An extension of
// the reproduction; see internal/adaptive.
//
//	go run ./examples/adaptive [-workload astar] [-insts 60000] [-phase 10000]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/adaptive"
	"repro/internal/cmp"
	"repro/internal/config"
	"repro/internal/workloads"
)

func main() {
	name := flag.String("workload", "astar", "workload to run")
	insts := flag.Uint64("insts", 60_000, "instructions to simulate")
	phase := flag.Int("phase", 10_000, "reconfiguration granularity (instructions)")
	penalty := flag.Uint64("penalty", 200, "reconfiguration penalty (cycles)")
	flag.Parse()

	w, ok := workloads.ByName(*name)
	if !ok {
		log.Fatalf("unknown workload %q", *name)
	}
	tr := w.Trace(*insts)
	cfg := adaptive.Config{PhaseInsts: *phase, SwitchPenalty: *penalty}
	m := config.Medium()

	tb, results, err := adaptive.Compare(m, tr, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: %s\n\n", w.Name, w.Description)
	fmt.Print(tb.String())

	oracle := results[adaptive.PolicyOracle]
	fmt.Println("\noracle per-phase choices (s = single, F = Fg-STP):")
	var line strings.Builder
	for _, p := range oracle.Phases {
		if p.Chosen == cmp.ModeFgSTP {
			line.WriteByte('F')
		} else {
			line.WriteByte('s')
		}
	}
	fmt.Println("  " + line.String())

	best := results[adaptive.PolicyOracle]
	static := results[adaptive.PolicyAlwaysFgSTP]
	if best.TotalCycles < static.TotalCycles {
		fmt.Printf("\nadaptivity saves %.1f%% over always-Fg-STP on this workload\n",
			(1-float64(best.TotalCycles)/float64(static.TotalCycles))*100)
	} else {
		fmt.Println("\nthis workload wants Fg-STP throughout: static reconfiguration suffices")
	}
}
