// Energy: compare the three execution modes on performance AND energy
// using the activity-based model in internal/energy — the perf/W trade
// the paper's power-wall motivation implies. (An extension of the
// reproduction, not a paper figure.)
//
//	go run ./examples/energy [-workload milc] [-insts 60000]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/cmp"
	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/stats"
	"repro/internal/workloads"
)

func main() {
	name := flag.String("workload", "milc", "workload to measure")
	insts := flag.Uint64("insts", 60_000, "instructions to simulate")
	flag.Parse()

	w, ok := workloads.ByName(*name)
	if !ok {
		log.Fatalf("unknown workload %q", *name)
	}
	tr := w.Trace(*insts)
	machine := config.Medium()
	weights := energy.Default()

	runs, err := cmp.RunAll(machine, tr)
	if err != nil {
		log.Fatal(err)
	}
	single := runs[cmp.ModeSingle]
	baseB, err := energy.Estimate(&single, weights)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s on the %s machine, %d instructions\n\n",
		w.Name, machine.Name, tr.Len())
	tb := stats.NewTable("performance and energy (arbitrary energy units)",
		"mode", "IPC", "speedup", "energy", "energy ratio", "EPI", "EDP gain")
	for _, mode := range cmp.Modes() {
		r := runs[mode]
		b, err := energy.Estimate(&r, weights)
		if err != nil {
			log.Fatal(err)
		}
		c := energy.Against(&single, baseB, &r, b)
		tb.AddRowf(string(mode), r.IPC(), c.Speedup,
			fmt.Sprintf("%.0f", b.Total), c.EnergyRatio, b.EPI, c.EDPGain)
	}
	fmt.Print(tb.String())

	fgstp := runs[cmp.ModeFgSTP]
	b, _ := energy.Estimate(&fgstp, weights)
	fmt.Println("\nFg-STP energy breakdown:")
	for _, comp := range b.Components() {
		v := b.ByComponent[comp]
		fmt.Printf("  %-10s %12.0f  (%.1f%%)\n", comp, v, v/b.Total*100)
	}
}
