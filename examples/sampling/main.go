// Sampling: SimPoint-style sampled simulation — cluster a workload's
// intervals by execution signature, simulate one representative per
// cluster, and compare the weighted estimate against the full-trace
// result, in both single-core and Fg-STP modes. Demonstrates the
// methodology substrate (internal/simpoint) that makes long-workload
// studies tractable.
//
// Sampling error depends on warmup adequacy: streaming workloads
// (bzip2, lbm) sample within a few percent; cache-resident ones (gcc)
// need -warmup comparable to their working-set reuse distance.
//
//	go run ./examples/sampling [-workload bzip2] [-insts 80000] [-interval 5000] [-warmup 2500] [-k 6]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/cmp"
	"repro/internal/config"
	"repro/internal/simpoint"
	"repro/internal/stats"
	"repro/internal/workloads"
)

func main() {
	name := flag.String("workload", "bzip2", "workload to sample")
	insts := flag.Uint64("insts", 80_000, "full-trace length")
	interval := flag.Int("interval", 5_000, "interval size (instructions)")
	warmup := flag.Int("warmup", 2_500, "cold-start warmup instructions per point (raise for cache-resident workloads)")
	k := flag.Int("k", 6, "max clusters / simulation points")
	flag.Parse()

	w, ok := workloads.ByName(*name)
	if !ok {
		log.Fatalf("unknown workload %q", *name)
	}
	tr := w.Trace(*insts)
	m := config.Medium()

	reps, err := simpoint.Choose(tr, *interval, *k)
	if err != nil {
		log.Fatal(err)
	}
	total := (tr.Len() + *interval - 1) / *interval
	fmt.Printf("workload %s: %d intervals of %d insts, %d simulation points chosen\n\n",
		w.Name, total, *interval, len(reps))
	for _, r := range reps {
		fmt.Printf("  point at interval %3d (inst %6d), weight %.2f\n",
			r.Interval, r.Start, r.Weight)
	}
	fmt.Println()

	slices, err := simpoint.Slices(reps, *interval, *warmup, tr.Len())
	if err != nil {
		log.Fatal(err)
	}
	boundaries := make([]int, len(slices))
	for i, s := range slices {
		boundaries[i] = s.WStart
	}

	tb := stats.NewTable("full vs sampled CPI", "mode", "full CPI", "sampled CPI", "error", "IPC 95% CI")
	var sampledInsts uint64
	for _, mode := range []cmp.Mode{cmp.ModeSingle, cmp.ModeFgSTP} {
		full, err := cmp.Run(m, mode, tr)
		if err != nil {
			log.Fatal(err)
		}
		fullCPI := float64(full.Cycles) / float64(full.Insts)

		// One functional-warming pass captures a restartable checkpoint
		// per slice; each point then simulates only warmup+interval
		// instructions in detail, restored at its checkpoint.
		sim, err := cmp.NewSliceSim(m, mode, tr, boundaries)
		if err != nil {
			log.Fatal(err)
		}
		est, err := simpoint.EstimateCPI(reps, *interval, *warmup, tr.Len(), 0, sim.Run)
		if err != nil {
			log.Fatal(err)
		}
		sampledInsts = est.SampledInsts
		tb.AddRowf(string(mode), fullCPI, est.CPI,
			fmt.Sprintf("%.1f%%", math.Abs(est.CPI-fullCPI)/fullCPI*100),
			fmt.Sprintf("[%.3f, %.3f]", est.IPCLow, est.IPCHigh))
	}
	fmt.Print(tb.String())
	fmt.Printf("\nsimulated %d of %d intervals in detail (%.0f%% of the instructions)\n",
		len(reps), total, float64(sampledInsts)/float64(tr.Len())*100)
}
