// Specsweep: run the whole SPEC-2006-like suite on both machine
// presets in all three modes and print the per-benchmark speedup
// figure — a miniature of experiments E2/E3 driven directly through the
// public simulation API.
//
//	go run ./examples/specsweep [-insts 40000] [-machine medium|small|both]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/cmp"
	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/workloads"
)

func main() {
	insts := flag.Uint64("insts", 40_000, "instructions per simulation")
	machine := flag.String("machine", "both", "machine preset: small | medium | both")
	flag.Parse()

	names := []string{"small", "medium"}
	if *machine != "both" {
		names = []string{*machine}
	}
	for _, name := range names {
		m, err := config.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		sweep(m, *insts)
	}
}

func sweep(m config.Machine, insts uint64) {
	tb := stats.NewTable(
		fmt.Sprintf("%s machine, %d insts/run", m.Name, insts),
		"benchmark", "suite", "single IPC", "fusion IPC", "fgstp IPC",
		"fgstp/single", "fgstp/fusion")
	var vsSingle, vsFusion []float64
	for _, w := range workloads.All() {
		tr := w.Trace(insts)
		runs, err := cmp.RunAll(m, tr)
		if err != nil {
			log.Fatal(err)
		}
		s, f, g := runs[cmp.ModeSingle], runs[cmp.ModeFusion], runs[cmp.ModeFgSTP]
		vsSingle = append(vsSingle, stats.Speedup(&s, &g))
		vsFusion = append(vsFusion, stats.Speedup(&f, &g))
		tb.AddRowf(w.Name, w.Suite, s.IPC(), f.IPC(), g.IPC(),
			stats.Speedup(&s, &g), stats.Speedup(&f, &g))
	}
	tb.AddRowf("GEOMEAN", "", "", "", "",
		stats.Geomean(vsSingle), stats.Geomean(vsFusion))
	fmt.Println(tb.String())
}
