// Benchmarks regenerating every table and figure of the Fg-STP
// evaluation, one per experiment (see DESIGN.md's experiment index and
// EXPERIMENTS.md for recorded results). Each benchmark iteration runs
// the full experiment at a reduced per-simulation instruction budget;
// the reported metrics (geomeans) are attached via b.ReportMetric so
// `go test -bench` output shows the reproduced numbers alongside the
// timing.
//
// Regenerate the full-size evaluation with:
//
//	go run ./cmd/fgstpbench -experiment all
package repro_test

import (
	"testing"

	"repro/internal/cmp"
	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/workloads"
)

// benchInsts is the per-simulation instruction budget for benchmark
// runs, reduced from the harness default (100k) to keep -bench wall
// time reasonable.
const benchInsts = 20_000

// runExperiment executes experiment id once per iteration and reports
// its headline metrics.
func runExperiment(b *testing.B, id string, metrics ...string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, benchInsts)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, mkey := range metrics {
				if v, ok := res.Metrics[mkey]; ok {
					b.ReportMetric(v, mkey)
				}
			}
		}
	}
}

// BenchmarkE1_Configs regenerates the machine-configuration table.
func BenchmarkE1_Configs(b *testing.B) {
	runExperiment(b, "E1")
}

// BenchmarkE2_MediumSpeedup regenerates the headline per-benchmark
// speedup figure on the medium 2-core CMP (paper: Fg-STP ≈ +18% over
// Core Fusion geomean).
func BenchmarkE2_MediumSpeedup(b *testing.B) {
	runExperiment(b, "E2", "geomean_fgstp_vs_single", "geomean_fgstp_vs_fusion")
}

// BenchmarkE3_SmallSpeedup regenerates the small-CMP speedup figure
// (paper: ≈ +7% over Core Fusion).
func BenchmarkE3_SmallSpeedup(b *testing.B) {
	runExperiment(b, "E3", "geomean_fgstp_vs_single", "geomean_fgstp_vs_fusion")
}

// BenchmarkE4_Ablation regenerates the mechanism-ablation figure.
func BenchmarkE4_Ablation(b *testing.B) {
	runExperiment(b, "E4", "geomean_full", "geomean_no-replication",
		"geomean_no-dep-speculation")
}

// BenchmarkE5_CommLatency regenerates the communication-latency
// sensitivity figure.
func BenchmarkE5_CommLatency(b *testing.B) {
	runExperiment(b, "E5", "geomean_lat1", "geomean_lat8")
}

// BenchmarkE6_CommBandwidth regenerates the bandwidth/queue
// sensitivity figure.
func BenchmarkE6_CommBandwidth(b *testing.B) {
	runExperiment(b, "E6", "geomean_bw1", "geomean_bw4")
}

// BenchmarkE7_Window regenerates the lookahead-window sensitivity
// figure.
func BenchmarkE7_Window(b *testing.B) {
	runExperiment(b, "E7", "geomean_win64", "geomean_win512")
}

// BenchmarkE8_Characterisation regenerates the mechanism
// characterisation table.
func BenchmarkE8_Characterisation(b *testing.B) {
	runExperiment(b, "E8", "mean_core1_frac", "mean_replicated_frac",
		"mean_comm_per_kinst")
}

// BenchmarkE9_StoreSets regenerates the memory-dependence predictor
// sensitivity figure.
func BenchmarkE9_StoreSets(b *testing.B) {
	runExperiment(b, "E9", "geomean_conservative", "geomean_perfect")
}

// BenchmarkE10_SuiteSplit regenerates the SPECint/SPECfp breakdown.
func BenchmarkE10_SuiteSplit(b *testing.B) {
	runExperiment(b, "E10", "medium_int_fgstp_vs_fusion", "medium_fp_fgstp_vs_fusion")
}

// Sampled-simulation wall-clock: the checkpointed SimPoint estimate
// against the full detailed run it replaces, on 10× extended traces of
// the two longest-running kernels. The sampled side carries its whole
// pipeline — BBV clustering, functional warming to the checkpoints,
// and the parallel slice fan-out — so the ratio is the end-to-end cost
// a -simpoint user pays. The PR 9 perf record pairs these entries:
// SimpointSampled must finish in under 25% of SimpointFull.
const (
	simpointBenchInsts    = 1_000_000 // 10× the harness default budget
	simpointBenchInterval = 10_000
)

// simpointBenchKernels are the longest kernels in the suite — the only
// ones whose timed regions naturally run past the 10× budget (most
// workloads terminate earlier and would clamp the trace).
var simpointBenchKernels = []string{"calculix", "bwaves"}

func simpointBenchSetup(b *testing.B, name string) (config.Machine, workloads.Workload) {
	b.Helper()
	m, err := config.ByName("medium")
	if err != nil {
		b.Fatal(err)
	}
	w, ok := workloads.ByName(name)
	if !ok {
		b.Fatalf("workload %q not found", name)
	}
	return m, w
}

// BenchmarkSimpointFull is the baseline: a full detailed Fg-STP run
// over the extended trace.
func BenchmarkSimpointFull(b *testing.B) {
	for _, name := range simpointBenchKernels {
		b.Run(name, func(b *testing.B) {
			m, w := simpointBenchSetup(b, name)
			tr := w.Trace(simpointBenchInsts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := cmp.Run(m, cmp.ModeFgSTP, tr)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(res.IPC(), "ipc")
				}
			}
		})
	}
}

// BenchmarkSimpointSampled is the checkpointed sampled estimate of the
// same run: representatives chosen, checkpoints captured, slices
// simulated in parallel.
func BenchmarkSimpointSampled(b *testing.B) {
	for _, name := range simpointBenchKernels {
		b.Run(name, func(b *testing.B) {
			m, w := simpointBenchSetup(b, name)
			tr := w.Trace(simpointBenchInsts)
			p := experiments.SimpointParams{Interval: simpointBenchInterval, Warmup: -1}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ests := experiments.SimpointEstimates(m, tr, []cmp.Mode{cmp.ModeFgSTP}, p)
				if ests[0].Error != "" {
					b.Fatal(ests[0].Error)
				}
				if i == b.N-1 {
					b.ReportMetric(ests[0].IPC, "ipc")
					b.ReportMetric(float64(ests[0].SampledInsts)/float64(tr.Len()), "sampled_frac")
				}
			}
		})
	}
}
