# Tier-1 gate (vet + build + race tests + bench smoke); see
# scripts/check.sh for the individual steps.
check:
	./scripts/check.sh

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -run='^$$' -bench=. -benchmem .

.PHONY: check build test race bench
