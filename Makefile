# Tier-1 gate (vet + build + race tests + bench smoke); see
# scripts/check.sh for the individual steps.
check:
	./scripts/check.sh

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -run='^$$' -bench=. -benchmem .

# Record the full benchmark suite (experiments + package micros,
# BENCH_COUNT runs each) to the git-ignored .bench/ scratch directory.
# Compare two recordings with `./scripts/bench.sh diff old.txt new.txt`,
# or regenerate the committed comparison with `./scripts/bench.sh json`.
bench-record:
	./scripts/bench.sh record .bench/bench_latest.txt

.PHONY: check build test race bench bench-record
