#!/usr/bin/env sh
# Tier-1 gate: everything a change must pass before it lands.
#   go vet          static checks
#   go build        whole-tree compile (commands and examples included)
#   go test -race   unit + guard tests under the race detector; this is
#                   what keeps the worker-pool harness honest — the
#                   concurrent-modes guard test replays one shared trace
#                   on every machine mode at once
#   bench smoke     one iteration of the E2 benchmark, proving the
#                   experiment harness end-to-end
#   fuzz smoke      5s of the trace-loader fuzzer: corrupt bytes must
#                   error, never panic; plus 5s of the hot-block replay
#                   fuzzer: memoized drains must match the ticked engine
#                   on arbitrary trace shapes
#   degraded smoke  fgstpbench with an injected livelock must finish
#                   the experiment, exit 1, and print byte-identical
#                   reports for -jobs 1 and -jobs 4
#   json smoke      fgstpbench -format json must emit a valid export
#                   (scripts/jsoncheck) byte-identical across -jobs,
#                   and fgstpsim -tracejson a valid Chrome trace
#   hotblock smoke  fgstpbench -experiment all output must be
#                   byte-identical with hot-block memoization on and
#                   off, at -jobs 1 and 4 (replay is a pure speedup,
#                   never a result change) — the full-suite run covers
#                   the fgstp mode, whose pair templates now replay;
#                   plus coverage floors: an fgstp workload must replay
#                   pair templates and a streaming workload must arm
#                   periodic-miss templates (nonzero counters in the
#                   fgstpsim footer)
#   sampled smoke   scripts/simpointcheck on a fixed workload set: the
#                   checkpointed SimPoint estimate's 95% confidence
#                   interval must contain the full-run IPC in every
#                   machine mode
#   service smoke   fgstpd end to end: start the daemon, submit a job
#                   over HTTP, the response must be byte-identical to
#                   fgstpbench stdout (uncached and cached); stream a
#                   2-experiment sweep whose documents must equal the
#                   fgstpbench exports, then re-run it and require the
#                   whole sweep served from cache (zero cells run);
#                   finally SIGTERM with a job in flight must drain
#                   gracefully — the job finishes, the daemon exits 0
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== bench smoke (E2, 1 iteration)"
go test -run='^$' -bench=E2 -benchtime=1x .

echo "== fuzz smoke (trace loader, 5s)"
go test -run='^$' -fuzz=FuzzTraceLoad -fuzztime=5s ./internal/trace

echo "== fuzz smoke (hot-block replay, 5s)"
go test -run='^$' -fuzz=FuzzHotBlockReplay -fuzztime=5s ./internal/ooo

echo "== degraded-run smoke (injected livelock, exit 1, jobs-determinism)"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/fgstpbench" ./cmd/fgstpbench
status=0
"$tmp/fgstpbench" -experiment E8 -insts 3000 -inject gobmk -jobs 1 \
    >"$tmp/degraded1.txt" 2>/dev/null || status=$?
[ "$status" -eq 1 ] || { echo "degraded run exited $status, want 1"; exit 1; }
status=0
"$tmp/fgstpbench" -experiment E8 -insts 3000 -inject gobmk -jobs 4 \
    >"$tmp/degraded4.txt" 2>/dev/null || status=$?
[ "$status" -eq 1 ] || { echo "degraded run (-jobs 4) exited $status, want 1"; exit 1; }
cmp "$tmp/degraded1.txt" "$tmp/degraded4.txt" || {
    echo "degraded output differs between -jobs 1 and -jobs 4"; exit 1; }
grep -q 'FAIL(livelock)' "$tmp/degraded1.txt" || {
    echo "degraded output missing FAIL(livelock) cell"; exit 1; }

echo "== json-export smoke (valid export, jobs-determinism, pipeline trace)"
"$tmp/fgstpbench" -experiment E2 -insts 3000 -format json -jobs 1 \
    >"$tmp/export1.json" 2>/dev/null
"$tmp/fgstpbench" -experiment E2 -insts 3000 -format json -jobs 4 \
    >"$tmp/export4.json" 2>/dev/null
cmp "$tmp/export1.json" "$tmp/export4.json" || {
    echo "JSON export differs between -jobs 1 and -jobs 4"; exit 1; }
go run ./scripts/jsoncheck <"$tmp/export1.json"
go build -o "$tmp/fgstpsim" ./cmd/fgstpsim
"$tmp/fgstpsim" -workload mcf -insts 3000 -mode fgstp -format json \
    -tracejson "$tmp/pipe.json" >/dev/null 2>&1
grep -q '"traceEvents"' "$tmp/pipe.json" || {
    echo "pipeline trace missing traceEvents"; exit 1; }

echo "== hot-block byte-identity smoke (all experiments, -hotblock=0 vs on, jobs 1 vs 4)"
# -experiment all covers every mode, including fgstp cells whose pair
# templates arm and replay at this budget — the byte-identity therefore
# proves the joint pair engine, not just the per-core one.
"$tmp/fgstpbench" -experiment all -insts 3000 -format json -jobs 1 \
    >"$tmp/allhb1.json" 2>/dev/null
"$tmp/fgstpbench" -experiment all -insts 3000 -format json -jobs 4 \
    >"$tmp/allhb4.json" 2>/dev/null
cmp "$tmp/allhb1.json" "$tmp/allhb4.json" || {
    echo "-experiment all export differs between -jobs 1 and -jobs 4"; exit 1; }
"$tmp/fgstpbench" -experiment all -insts 3000 -format json -hotblock=0 -jobs 1 \
    >"$tmp/allnohb1.json" 2>/dev/null
"$tmp/fgstpbench" -experiment all -insts 3000 -format json -hotblock=0 -jobs 4 \
    >"$tmp/allnohb4.json" 2>/dev/null
cmp "$tmp/allnohb1.json" "$tmp/allnohb4.json" || {
    echo "-hotblock=0 -experiment all export differs between -jobs 1 and -jobs 4"; exit 1; }
cmp "$tmp/allhb1.json" "$tmp/allnohb1.json" || {
    echo "-experiment all export differs between -hotblock on and off"; exit 1; }

echo "== hot-block coverage smoke (fgstp pair replay, streaming periodic-miss)"
# The fgstp pair must replay joint templates on a loop-heavy workload,
# and a streaming workload (mcf's pointer chase misses the L1 on every
# iteration) must arm periodic-miss templates — both were 0 by design
# before the pair/periodic-miss template kinds existed.
"$tmp/fgstpsim" -workload hmmer -insts 20000 -machine medium -mode fgstp \
    -format json >/dev/null 2>"$tmp/hb_hmmer.log"
pair="$(sed -n 's/.*, \([0-9][0-9]*\) pair replays)$/\1/p' "$tmp/hb_hmmer.log")"
[ -n "$pair" ] && [ "$pair" -gt 0 ] || {
    echo "fgstp mode replayed no pair templates on hmmer"; cat "$tmp/hb_hmmer.log"; exit 1; }
"$tmp/fgstpsim" -workload mcf -insts 20000 -machine medium -mode fgstp \
    -format json >/dev/null 2>"$tmp/hb_mcf.log"
periodic="$(awk '$2 == "hotblock_templates_periodic" {print int($3)}' "$tmp/hb_mcf.log")"
[ -n "$periodic" ] && [ "$periodic" -gt 0 ] || {
    echo "streaming workload mcf armed no periodic-miss templates"; cat "$tmp/hb_mcf.log"; exit 1; }
pair="$(sed -n 's/.*, \([0-9][0-9]*\) pair replays)$/\1/p' "$tmp/hb_mcf.log")"
[ -n "$pair" ] && [ "$pair" -gt 0 ] || {
    echo "streaming workload mcf replayed no pair templates"; cat "$tmp/hb_mcf.log"; exit 1; }

echo "== sampled-accuracy smoke (estimate CI covers full-run IPC)"
go run ./scripts/simpointcheck

echo "== service smoke (fgstpd byte-identity, cache, graceful drain)"
go build -o "$tmp/fgstpd" ./cmd/fgstpd
"$tmp/fgstpd" serve -addr 127.0.0.1:0 -cache "$tmp/cache" \
    -portfile "$tmp/fgstpd.port" 2>"$tmp/fgstpd.log" &
daemon=$!
trap 'kill "$daemon" 2>/dev/null || true; rm -rf "$tmp"' EXIT
i=0
while [ ! -s "$tmp/fgstpd.port" ]; do
    i=$((i+1))
    [ "$i" -le 100 ] || { echo "fgstpd never wrote its portfile"; cat "$tmp/fgstpd.log"; exit 1; }
    sleep 0.1
done
addr="$(cat "$tmp/fgstpd.port")"
"$tmp/fgstpd" health -addr "$addr" >/dev/null
"$tmp/fgstpd" submit -addr "$addr" -kind bench -experiment E2 -insts 3000 -format json \
    >"$tmp/served1.json"
cmp "$tmp/export1.json" "$tmp/served1.json" || {
    echo "served response differs from fgstpbench stdout"; exit 1; }
"$tmp/fgstpd" submit -addr "$addr" -kind bench -experiment E2 -insts 3000 -format json \
    >"$tmp/served2.json"
cmp "$tmp/served1.json" "$tmp/served2.json" || {
    echo "cached response differs from uncached response"; exit 1; }
# Sweep round-trip: every unit document must be byte-identical to the
# fgstpbench stdout for the same experiment/insts, and a repeated sweep
# must be served entirely from cache — zero cells recomputed.
"$tmp/fgstpd" sweep -addr "$addr" -experiments E1,E2 -insts 3000 -format json \
    -dir "$tmp/sweep1" 2>"$tmp/sweep1.log" || {
    echo "sweep failed"; cat "$tmp/sweep1.log"; exit 1; }
cmp "$tmp/export1.json" "$tmp/sweep1/E2-3000.json" || {
    echo "sweep E2 document differs from fgstpbench stdout"; exit 1; }
"$tmp/fgstpbench" -experiment E1 -insts 3000 -format json -jobs 1 \
    >"$tmp/e1.json" 2>/dev/null
cmp "$tmp/e1.json" "$tmp/sweep1/E1-3000.json" || {
    echo "sweep E1 document differs from fgstpbench stdout"; exit 1; }
"$tmp/fgstpd" sweep -addr "$addr" -experiments E1,E2 -insts 3000 -format json \
    -dir "$tmp/sweep2" 2>"$tmp/sweep2.log" || {
    echo "repeated sweep failed"; cat "$tmp/sweep2.log"; exit 1; }
cmp "$tmp/sweep1/E1-3000.json" "$tmp/sweep2/E1-3000.json" || {
    echo "repeated sweep E1 document differs"; exit 1; }
cmp "$tmp/sweep1/E2-3000.json" "$tmp/sweep2/E2-3000.json" || {
    echo "repeated sweep E2 document differs"; exit 1; }
grep -q 'sweep done: .* cells run=0 hit=0 miss=0' "$tmp/sweep2.log" || {
    echo "repeated sweep recomputed cells"; cat "$tmp/sweep2.log"; exit 1; }
# SIGTERM with a job in flight: the drain finishes the job (the client
# receives a complete document) and the daemon exits 0.
"$tmp/fgstpd" submit -addr "$addr" -kind bench -experiment E5 -insts 60000 -format json \
    >"$tmp/inflight.json" &
client=$!
sleep 1
kill -TERM "$daemon"
wait "$client" || { echo "in-flight submit failed during drain"; exit 1; }
status=0
wait "$daemon" || status=$?
trap 'rm -rf "$tmp"' EXIT
[ "$status" -eq 0 ] || {
    echo "fgstpd drain exited $status, want 0"; cat "$tmp/fgstpd.log"; exit 1; }
go run ./scripts/jsoncheck <"$tmp/inflight.json"
[ -s "$tmp/cache/index.json" ] || { echo "drained daemon left no cache index"; exit 1; }

echo "check: ok"
