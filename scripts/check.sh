#!/usr/bin/env sh
# Tier-1 gate: everything a change must pass before it lands.
#   go vet          static checks
#   go build        whole-tree compile (commands and examples included)
#   go test -race   unit + guard tests under the race detector; this is
#                   what keeps the worker-pool harness honest — the
#                   concurrent-modes guard test replays one shared trace
#                   on every machine mode at once
#   bench smoke     one iteration of the E2 benchmark, proving the
#                   experiment harness end-to-end
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== bench smoke (E2, 1 iteration)"
go test -run='^$' -bench=E2 -benchtime=1x .

echo "check: ok"
