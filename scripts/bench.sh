#!/usr/bin/env sh
# Perf gate for the cycle-engine hot path.
#
#   bench.sh record <out.txt>            run the benchmark suite, save raw output
#   bench.sh diff <old.txt> <new.txt>    benchstat-style summary (text, stdout)
#   bench.sh json <old.txt> <new.txt>    same, as the committed BENCH json
#
# The suite is the root experiment benchmarks (E1..E10, the end-to-end
# wall-time signal) plus the internal/ooo and internal/core
# microbenchmarks (the allocs/op signal). Each runs BENCH_COUNT times
# (default 6) at BENCH_TIME per run (default 1x: experiment benchmarks
# execute a full experiment per iteration, so one iteration is already
# seconds of work; medians across counts absorb the noise).
set -eu
cd "$(dirname "$0")/.."

COUNT="${BENCH_COUNT:-6}"
TIME="${BENCH_TIME:-1x}"

record() {
    out="$1"
    mkdir -p "$(dirname "$out")"
    : >"$out"
    echo "== bench record: root experiments (count=$COUNT, benchtime=$TIME)" >&2
    go test -run='^$' -bench=. -benchmem -benchtime="$TIME" -count="$COUNT" . | tee -a "$out" >&2
    echo "== bench record: internal/ooo" >&2
    go test -run='^$' -bench=. -benchmem -benchtime="$TIME" -count="$COUNT" ./internal/ooo | tee -a "$out" >&2
    echo "== bench record: internal/core" >&2
    go test -run='^$' -bench=. -benchmem -benchtime="$TIME" -count="$COUNT" ./internal/core | tee -a "$out" >&2
    echo "recorded: $out" >&2
}

case "${1:-}" in
record)
    [ $# -eq 2 ] || { echo "usage: bench.sh record <out.txt>" >&2; exit 2; }
    record "$2"
    ;;
diff)
    [ $# -eq 3 ] || { echo "usage: bench.sh diff <old.txt> <new.txt>" >&2; exit 2; }
    go run ./scripts/benchdiff -format text "$2" "$3"
    ;;
json)
    [ $# -eq 3 ] || { echo "usage: bench.sh json <old.txt> <new.txt>" >&2; exit 2; }
    go run ./scripts/benchdiff -format json \
        -note "medians of $COUNT runs at -benchtime=$TIME; see scripts/bench.sh" \
        "$2" "$3"
    ;;
*)
    echo "usage: bench.sh record <out.txt> | diff <old.txt> <new.txt> | json <old.txt> <new.txt>" >&2
    exit 2
    ;;
esac
