// Command benchdiff compares two `go test -bench` output files and
// emits a benchstat-style old-vs-new summary. It exists because the
// perf gate must run in a hermetic container: no network, no
// golang.org/x/perf dependency — just the standard library.
//
// Usage:
//
//	benchdiff [-format text|json] old.txt new.txt
//
// Each input is either the raw output of `go test -bench . -benchmem
// -count=N` — repeated counts of the same benchmark are aggregated by
// median (robust to a noisy neighbour in CI) — or a committed
// BENCH_*.json record (detected by the .json suffix), whose "new"
// columns stand in as that side's samples; CI uses this to diff a
// fresh recording against the newest committed record. Benchmarks
// present in only one input are reported without a delta. The JSON
// form is the schema committed as the BENCH_*.json files.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// sample is one benchmark line: the measured columns of
// `go test -bench -benchmem` output.
type sample struct {
	nsOp     float64
	bytesOp  float64
	allocsOp float64
	hasMem   bool
}

// Entry is the aggregated old-vs-new record for one benchmark, as
// serialised into the committed BENCH JSON.
type Entry struct {
	Name        string  `json:"name"`
	OldNsOp     float64 `json:"old_ns_op,omitempty"`
	NewNsOp     float64 `json:"new_ns_op,omitempty"`
	Speedup     float64 `json:"speedup,omitempty"` // old/new wall time
	OldBytesOp  float64 `json:"old_bytes_op,omitempty"`
	NewBytesOp  float64 `json:"new_bytes_op,omitempty"`
	OldAllocsOp float64 `json:"old_allocs_op,omitempty"`
	NewAllocsOp float64 `json:"new_allocs_op,omitempty"`
	Counts      [2]int  `json:"counts"` // samples aggregated (old, new)
}

// Doc is the top-level document of the committed perf record.
type Doc struct {
	Schema  string  `json:"schema"`
	Note    string  `json:"note,omitempty"`
	Entries []Entry `json:"benchmarks"`
}

func main() {
	format := flag.String("format", "text", "output format: text or json")
	note := flag.String("note", "", "free-form note embedded in the JSON document")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-format text|json] old.txt new.txt")
		os.Exit(2)
	}
	old, err := parseInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cur, err := parseInput(flag.Arg(1))
	if err != nil {
		fatal(err)
	}

	names := make([]string, 0, len(old)+len(cur))
	seen := map[string]bool{}
	for n := range old {
		names = append(names, n)
		seen[n] = true
	}
	for n := range cur {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	doc := Doc{Schema: "fgstp.perf/1", Note: *note}
	for _, n := range names {
		e := Entry{Name: n}
		if s, ok := old[n]; ok {
			m := medianOf(s)
			e.OldNsOp, e.OldBytesOp, e.OldAllocsOp = m.nsOp, m.bytesOp, m.allocsOp
			e.Counts[0] = len(s)
		}
		if s, ok := cur[n]; ok {
			m := medianOf(s)
			e.NewNsOp, e.NewBytesOp, e.NewAllocsOp = m.nsOp, m.bytesOp, m.allocsOp
			e.Counts[1] = len(s)
		}
		if e.OldNsOp > 0 && e.NewNsOp > 0 {
			e.Speedup = e.OldNsOp / e.NewNsOp
		}
		doc.Entries = append(doc.Entries, e)
	}

	switch *format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fatal(err)
		}
	case "text":
		writeText(os.Stdout, doc)
	default:
		fatal(fmt.Errorf("unknown -format %q (want text or json)", *format))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}

// parseInput loads one comparison side: a committed BENCH_*.json
// record (its "new" columns are the samples) or a raw benchmark
// output file.
func parseInput(path string) (map[string][]sample, error) {
	if strings.HasSuffix(path, ".json") {
		return parseRecord(path)
	}
	return parseFile(path)
}

// parseRecord loads a committed benchdiff JSON document and exposes
// its new-side medians as one sample per benchmark.
func parseRecord(path string) (map[string][]sample, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Doc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	out := map[string][]sample{}
	for _, e := range doc.Entries {
		if e.NewNsOp <= 0 {
			continue
		}
		out[e.Name] = []sample{{
			nsOp:     e.NewNsOp,
			bytesOp:  e.NewBytesOp,
			allocsOp: e.NewAllocsOp,
			hasMem:   e.NewBytesOp > 0 || e.NewAllocsOp > 0,
		}}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no usable benchmark entries", path)
	}
	return out, nil
}

// parseFile collects the samples of every benchmark in one output file.
func parseFile(path string) (map[string][]sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string][]sample{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, s, ok := parseLine(sc.Text())
		if ok {
			out[name] = append(out[name], s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return out, nil
}

// parseLine decodes one "BenchmarkX-8  N  123 ns/op  45 B/op  6
// allocs/op ..." line. The -cpu suffix is stripped so recordings from
// machines with different core counts still line up.
func parseLine(line string) (string, sample, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", sample{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	var s sample
	got := false
	for i := 2; i+1 < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			s.nsOp, got = v, true
		case "B/op":
			s.bytesOp, s.hasMem = v, true
		case "allocs/op":
			s.allocsOp, s.hasMem = v, true
		}
	}
	return name, s, got
}

// medianOf aggregates samples by per-column median.
func medianOf(s []sample) sample {
	col := func(get func(sample) float64) float64 {
		vs := make([]float64, len(s))
		for i, x := range s {
			vs[i] = get(x)
		}
		sort.Float64s(vs)
		n := len(vs)
		if n%2 == 1 {
			return vs[n/2]
		}
		return (vs[n/2-1] + vs[n/2]) / 2
	}
	return sample{
		nsOp:     col(func(x sample) float64 { return x.nsOp }),
		bytesOp:  col(func(x sample) float64 { return x.bytesOp }),
		allocsOp: col(func(x sample) float64 { return x.allocsOp }),
	}
}

// writeText renders the benchstat-style table.
func writeText(w *os.File, doc Doc) {
	fmt.Fprintf(w, "%-36s %14s %14s %8s %12s %12s\n",
		"benchmark", "old ns/op", "new ns/op", "speedup", "old allocs", "new allocs")
	for _, e := range doc.Entries {
		speed := "n/a"
		if e.Speedup > 0 {
			speed = fmt.Sprintf("%.2fx", e.Speedup)
		}
		fmt.Fprintf(w, "%-36s %14.0f %14.0f %8s %12.0f %12.0f\n",
			strings.TrimPrefix(e.Name, "Benchmark"),
			e.OldNsOp, e.NewNsOp, speed, e.OldAllocsOp, e.NewAllocsOp)
	}
}
