// Command simpointcheck verifies the sampled-simulation accuracy
// contract: for each workload × mode, the checkpointed SimPoint
// estimate's 95% confidence interval must contain the full-run IPC.
// The tier-1 gate (scripts/check.sh) runs it on a fixed workload set;
// `-workloads all` sweeps the whole roster.
//
// Usage:
//
//	simpointcheck [-workloads mcf,gcc,...|all] [-insts 60000]
//	              [-interval 5000] [-jobs n] [-v]
//
// Exit 0 when every estimate's interval contains its full-run IPC,
// 1 otherwise, 2 on setup errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cmp"
	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/workloads"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		list     = flag.String("workloads", "mcf,gcc,bzip2,lbm,gobmk,hmmer", "comma-separated workload names, or \"all\"")
		machine  = flag.String("machine", "medium", "machine preset: small | medium")
		insts    = flag.Uint64("insts", 60_000, "full-trace length per workload")
		interval = flag.Int("interval", 5_000, "SimPoint interval (instructions)")
		jobs     = flag.Int("jobs", 0, "slice fan-out (<= 0: GOMAXPROCS)")
		verbose  = flag.Bool("v", false, "print every comparison, not just failures")
	)
	flag.Parse()

	m, err := config.ByName(*machine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simpointcheck:", err)
		return 2
	}
	var names []string
	if *list == "all" {
		names = workloads.Names()
	} else {
		names = strings.Split(*list, ",")
	}

	failures := 0
	for _, name := range names {
		w, ok := workloads.ByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "simpointcheck: unknown workload %q\n", name)
			return 2
		}
		tr := w.Trace(*insts)
		ests := experiments.SimpointEstimates(m, tr, cmp.Modes(), experiments.SimpointParams{
			Interval: *interval,
			Warmup:   -1,
			Jobs:     *jobs,
		})
		for i, mode := range cmp.Modes() {
			e := ests[i]
			if e.Error != "" {
				fmt.Printf("FAIL %-10s %-12s estimate failed: %s\n", name, mode, e.Error)
				failures++
				continue
			}
			full, err := cmp.Run(m, mode, tr)
			if err != nil {
				fmt.Printf("FAIL %-10s %-12s full run failed: %v\n", name, mode, err)
				failures++
				continue
			}
			fullIPC := full.IPC()
			ok := fullIPC >= e.IPCLow && fullIPC <= e.IPCHigh
			if !ok {
				failures++
			}
			if !ok || *verbose {
				status := "ok  "
				if !ok {
					status = "FAIL"
				}
				fmt.Printf("%s %-10s %-12s full IPC %.3f, sampled %.3f ci=[%.3f, %.3f] (%d points, %.0f%% of insts)\n",
					status, name, mode, fullIPC, e.IPC, e.IPCLow, e.IPCHigh,
					e.Points, 100*float64(e.SampledInsts)/float64(tr.Len()))
			}
		}
	}
	if failures > 0 {
		fmt.Printf("simpointcheck: %d estimate(s) outside their confidence interval\n", failures)
		return 1
	}
	fmt.Printf("simpointcheck: ok (%d workloads, %d modes)\n", len(names), len(cmp.Modes()))
	return 0
}
