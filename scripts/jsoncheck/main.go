// Command jsoncheck validates a machine-readable fgstpbench export
// from stdin: the document must parse as JSON, carry the expected
// schema tag, and contain at least one experiment whose table rows all
// match their headers. It exists so scripts/check.sh can smoke-test
// the -format json path without depending on external tools.
//
//	fgstpbench -experiment E2 -format json | go run ./scripts/jsoncheck
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
)

func main() {
	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		fatal(err)
	}
	var doc struct {
		Schema      string `json:"schema"`
		Experiments []struct {
			ID     string `json:"id"`
			Tables []struct {
				Title   string     `json:"title"`
				Headers []string   `json:"headers"`
				Rows    [][]string `json:"rows"`
			} `json:"tables"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		fatal(fmt.Errorf("not valid JSON: %w", err))
	}
	if doc.Schema != experiments.SchemaVersion {
		fatal(fmt.Errorf("schema %q, want %q", doc.Schema, experiments.SchemaVersion))
	}
	if len(doc.Experiments) == 0 {
		fatal(fmt.Errorf("no experiments in export"))
	}
	for _, e := range doc.Experiments {
		if e.ID == "" {
			fatal(fmt.Errorf("experiment with empty id"))
		}
		for _, t := range e.Tables {
			for i, row := range t.Rows {
				if len(row) != len(t.Headers) {
					fatal(fmt.Errorf("%s table %q row %d: %d cells for %d headers",
						e.ID, t.Title, i, len(row), len(t.Headers)))
				}
			}
		}
	}
	fmt.Printf("jsoncheck: ok (%d experiment(s))\n", len(doc.Experiments))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "jsoncheck:", err)
	os.Exit(1)
}
